// Package cluster scales the single-instance serving model of
// internal/infer to a multi-host CXL cluster: N serving replicas — each a
// full host with its own cores, LLC and local DRAM block pool — draw
// overflow KV-cache blocks from shared Type-3 expanders behind a CXL
// switch (a fabric.Star topology). A pluggable router spreads the open
// request stream across replicas (round-robin, least-loaded,
// session-affinity), each replica runs its own continuous-batching loop
// with reservation-based admission, and every shared-block access rides
// the fabric — so switch-port arbitration and expander bandwidth show up
// directly in TTFT/TPOT when the shared pool is oversubscribed.
//
// The simulation executes on the fabric's conservative-PDES shard
// partition (fabric.ShardSet): the switch hub and the shared expanders
// form one shard that owns routing, admission, the block pools and every
// fabric transfer, and each replica host is its own shard running the
// batching loop and local-DRAM compute. The two sides interact only
// through typed cross-shard messages:
//
//	admit  (hub → replica)  a request with its KV blocks pre-assigned
//	bundle (replica → hub)  one batching step's shared-memory work
//	reply  (hub → replica)  completions for that step, plus the next
//	                        step's prefetched attention reads
//
// Every per-request block is assigned at admission (local-first, shared
// overflow), so replicas never negotiate allocation mid-flight, and the
// attention reads for decode step k+1 are issued when step k's bundle
// reaches the hub — a depth-1 prefetch that both overlaps fabric latency
// with compute and gives each shard a full link latency of lookahead.
//
// The whole simulation is seeded (internal/rng derived streams) and
// replays byte-identical metrics for a fixed Config at ANY worker count,
// including Shards: 1 (inline): cross-shard messages merge by
// (timestamp, source shard, source sequence), so the event order never
// depends on scheduling. The `cluster` experiment section leans on that
// to render identically in serial, parallel and sharded suite runs.
package cluster

import (
	"fmt"

	"repro/internal/cxl"
	"repro/internal/fabric"
	"repro/internal/host"
	"repro/internal/infer"
	"repro/internal/phys"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/workload"
)

// localPoolBase places each replica's local KV pool in host DRAM, clear
// of the regions the figures use (same base as infer's near pool).
const localPoolBase = phys.Addr(4 << 30)

// Config parameterizes one cluster serving simulation.
type Config struct {
	// Seed drives every random stream (arrivals, shapes, sessions)
	// through derived internal/rng streams.
	Seed int64
	// Replicas is the number of serving hosts; Expanders the number of
	// shared Type-3 pools behind the switch.
	Replicas, Expanders int
	// Requests is the total request count; RatePerSec the Poisson
	// arrival rate of the open stream.
	Requests   int
	RatePerSec float64
	// PromptMin/Max and DecodeMin/Max bound request shapes (tokens),
	// zipf-skewed toward the minimum like the single-instance model.
	PromptMin, PromptMax int
	DecodeMin, DecodeMax int
	// Sessions is how many distinct client sessions the stream draws
	// from (zipf-skewed: a few sessions dominate), the signal the
	// affinity router exploits.
	Sessions int
	// MaxBatch bounds each replica's continuous batch.
	MaxBatch int
	// BlockTokens and BytesPerToken shape the paged KV cache.
	BlockTokens, BytesPerToken int
	// LocalBlocks sizes each replica's local DRAM pool; SharedBlocks
	// sizes each expander's shared pool. Replicas spill to the shared
	// pool when local runs out, so LocalBlocks < working set puts
	// traffic on the fabric.
	LocalBlocks, SharedBlocks int
	// Router spreads requests across replicas. Routers are stateful and
	// single-use: construct a fresh one per Run. Nil means round-robin.
	Router Router
	// PortCredits sizes the switch's per-egress-port credit pool. The
	// cluster default is 2 — a modest store-and-forward buffer, so a few
	// replicas hammering one expander link queue visibly at the port
	// instead of vanishing into deep buffering.
	PortCredits int
	// Model is the per-token compute profile (shared with infer).
	Model infer.ModelProfile

	// Shards is the worker-goroutine budget for the sharded execution.
	// The model always partitions into one engine per replica host plus
	// the hub; Shards only picks how many OS workers drive them (0 and 1
	// both run inline on the caller). Metrics are byte-identical at
	// every value, so this is a pure speed knob and stays out of cache
	// and canonical keys.
	Shards int
	// Recruit, when non-nil and Shards > 1, borrows up to n extra
	// worker slots from an external pool (the experiment runner's
	// parallelism budget) and returns how many it got plus a release.
	// The run proceeds with 1+got workers so shard workers and suite
	// workers never oversubscribe the machine together.
	Recruit func(n int) (got int, release func())
}

// withDefaults fills zero fields with a small 2-replica setup whose
// working set spills to the shared pool.
func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Expanders == 0 {
		c.Expanders = 1
	}
	if c.Requests == 0 {
		c.Requests = 64
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 25_000
	}
	if c.PromptMin == 0 {
		c.PromptMin = 24
	}
	if c.PromptMax == 0 {
		c.PromptMax = 64
	}
	if c.DecodeMin == 0 {
		c.DecodeMin = 8
	}
	if c.DecodeMax == 0 {
		c.DecodeMax = 24
	}
	if c.Sessions == 0 {
		c.Sessions = 12
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 4
	}
	if c.BlockTokens == 0 {
		c.BlockTokens = 16
	}
	if c.BytesPerToken == 0 {
		c.BytesPerToken = 32
	}
	if c.LocalBlocks == 0 {
		c.LocalBlocks = 16
	}
	if c.SharedBlocks == 0 {
		c.SharedBlocks = 256
	}
	if c.PortCredits == 0 {
		c.PortCredits = 2
	}
	if c.Router == nil {
		c.Router = NewRoundRobin()
	}
	if c.Model == (infer.ModelProfile{}) {
		c.Model = infer.DefaultModel()
	}
	return c
}

// Topology returns the fabric topology the configuration compiles to: a
// Star of Replicas hosts and Expanders Type-3 pools behind one switch.
func (c Config) Topology() fabric.Topology {
	c = c.withDefaults()
	return fabric.Star(c.Replicas, c.Expanders,
		fabric.NodeSpec{LLCBytes: 1 << 20, LLCWays: 16, Cores: 4},
		fabric.NodeSpec{PortCredits: c.PortCredits},
		fabric.LinkSpec{})
}

// ReplicaMetrics is one replica's serving outcome.
type ReplicaMetrics struct {
	Requests   int
	TTFT, TPOT stats.Sample
	GenTokens  int
	// LocalBytes and SharedBytes count KV payload served from the
	// replica's own DRAM pool vs the shared expanders.
	LocalBytes, SharedBytes uint64
}

// Metrics is the outcome of one cluster simulation.
type Metrics struct {
	Router   string
	Replicas []ReplicaMetrics
	// TTFT and TPOT aggregate every request (microseconds).
	TTFT, TPOT stats.Sample
	GenTokens  int
	Elapsed    sim.Time
	Goodput    float64
	// Links and Ports are the fabric's per-link traffic and switch
	// arbitration stats.
	Links []fabric.LinkStat
	Ports []fabric.PortStat
	// TopoKey is the compiled topology's canonical key — the piece the
	// experiment cache key folds in.
	TopoKey string
	// Accesses counts simulated KV block accesses (the event measure for
	// runner accounting).
	Accesses uint64
}

// SwitchWaited sums arbitration wait across all switch egress ports.
func (m *Metrics) SwitchWaited() sim.Time {
	var w sim.Time
	for _, p := range m.Ports {
		w += p.Waited
	}
	return w
}

// PeakQueue returns the deepest egress-port queue seen anywhere.
func (m *Metrics) PeakQueue() int {
	q := 0
	for _, p := range m.Ports {
		if p.PeakQueue > q {
			q = p.PeakQueue
		}
	}
	return q
}

// creq is one in-flight request. The hub owns it from arrival through
// admission (assigning every KV block it will ever use), the replica
// owns it while a step computes, and the hub again while a bundle is in
// flight — each handoff rides a cross-shard message, so ownership never
// overlaps.
type creq struct {
	id             int
	arrival        sim.Time
	session        uint32
	prompt, decode int
	rep            *replica
	// blocks is the request's full KV block assignment, fixed at
	// admission: the local blocks first, shared overflow after.
	// resident marks the prefix actually holding KV so far.
	blocks       []cblock
	resident     int
	tokensInLast int
	generated    int
	prefilled    bool
	firstTok     sim.Time
	lastTok      sim.Time

	// Per-step scratch, written by the replica at step time and
	// completed by the hub at bundle time.
	actPrefill bool
	shFrom     int      // first shared block of the prefill chain, -1 if none
	shStart    sim.Time // when the local prefill chain hands off to the fabric
	tailWrite  bool     // this decode's token append lands on a shared block
	tailStart  sim.Time
	stepDone   sim.Time
	// sharedReady is when the NEXT decode step's shared attention reads
	// complete — issued by the hub at bundle time (depth-1 prefetch).
	sharedReady sim.Time
}

// cblock is one allocated KV block: a local DRAM address or a shared
// slot on an expander.
type cblock struct {
	shared bool
	exp    int       // expander index when shared
	addr   phys.Addr // local address when !shared
}

// bundle carries one batching step hub-ward: every request that computed
// this step (acted, in batch order) and the subset that finished
// (retired). The same struct rides the reply back and is recycled.
type bundle struct {
	rep     *replica
	e       sim.Time // the step's start time
	acted   []*creq
	retired []*creq
}

func (b *bundle) reset() {
	clear(b.acted)
	clear(b.retired)
	b.acted = b.acted[:0]
	b.retired = b.retired[:0]
}

// replica is one serving host's shard-side state: the continuous batch
// and the compute path through the host's own memory system. Queues and
// pools live hub-side.
type replica struct {
	c      *Cluster
	idx    int
	hostID string
	sh     *fabric.Shard
	core   *host.Core

	pending   []*creq // admitted, joining at the next step
	batch     []*creq
	scheduled bool // a step event is queued on the shard engine
	awaiting  bool // a bundle is at the hub; no step may run

	bundles []*bundle // free list

	localAccesses uint64
	m             ReplicaMetrics

	// Bound once at New so event scheduling never allocates.
	admitFn, stepFn, replyFn func(any)
}

// mirror is the hub's authoritative view of one replica's admission
// state: its local free list, its routed queue, and how many admitted
// requests it still holds.
type mirror struct {
	localFree []phys.Addr
	queue     []*creq
	batchN    int
}

// sharedSlot is one free shared block.
type sharedSlot struct{ exp int }

// reqOutcome is a request's final numbers, written by its owning
// replica at reply time (indices are disjoint across replicas) and
// folded into the global Sample in request-id order at finalize — the
// step that makes aggregate metrics independent of shard interleaving.
type reqOutcome struct {
	ttft    float64
	tpot    float64
	hasTPOT bool
	lastTok sim.Time
}

// Cluster is one compiled cluster simulation.
type Cluster struct {
	cfg        Config
	p          *timing.Params
	f          *fabric.Fabric
	ss         *fabric.ShardSet
	hub        *fabric.Shard
	hubShard   int
	reps       []*replica
	repShard   []int
	expIDs     []string
	blockBytes int
	m          Metrics

	// Hub-owned coordinator state, touched only inside hub events.
	sharedFree     []sharedSlot
	mirrors        []mirror
	arrivalsLeft   int
	finishedN      int
	totalN         int
	sharedAccesses uint64

	outcomes []reqOutcome

	arrivalFn, bundleFn func(any)
}

// New compiles the cluster: fabric, shard partition, replicas, pools.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	p := timing.Default()
	c := &Cluster{
		cfg:        cfg,
		p:          p,
		f:          fabric.MustBuild(cfg.Topology(), p, fabric.Shards(1)),
		blockBytes: cfg.BlockTokens * cfg.BytesPerToken,
	}
	c.ss = c.f.ShardSet()
	c.expIDs = c.f.Expanders()
	c.hubShard = c.ss.NodeShard(c.expIDs[0])
	c.hub = c.ss.Shard(c.hubShard)
	c.arrivalFn = c.onArrival
	c.bundleFn = c.onBundle
	for i, id := range c.f.Hosts() {
		r := &replica{
			c: c, idx: i, hostID: id,
			sh:   c.ss.Shard(c.ss.NodeShard(id)),
			core: c.f.Host(id).Core(0),
		}
		r.admitFn = r.onAdmit
		r.stepFn = r.onStep
		r.replyFn = r.onReply
		c.reps = append(c.reps, r)
		c.repShard = append(c.repShard, r.sh.ID())
		var mir mirror
		for b := cfg.LocalBlocks - 1; b >= 0; b-- {
			mir.localFree = append(mir.localFree,
				localPoolBase+phys.Addr(b*c.blockBytes))
		}
		c.mirrors = append(c.mirrors, mir)
	}
	// Stripe the shared free list round-robin across expanders so
	// allocation spreads load before any expander saturates.
	for b := 0; b < cfg.SharedBlocks; b++ {
		for x := 0; x < cfg.Expanders; x++ {
			c.sharedFree = append(c.sharedFree, sharedSlot{exp: x})
		}
	}
	c.m.Router = cfg.Router.Name()
	c.m.TopoKey = cfg.Topology().CanonicalKey(p)
	return c
}

// Run executes the cluster simulation to completion. Deterministic in
// Config — including across Shards values, which only change wall-clock
// speed.
func Run(cfg Config) Metrics {
	c := New(cfg)
	c.run()
	return c.m
}

// NumReplicas and Load expose routing signals: Load is a replica's
// queued plus admitted-unretired request count, as the hub sees it.
func (c *Cluster) NumReplicas() int { return len(c.reps) }
func (c *Cluster) Load(i int) int   { return len(c.mirrors[i].queue) + c.mirrors[i].batchN }

// genRequests draws the seeded open request stream.
func (c *Cluster) genRequests() []*creq {
	cfg := c.cfg
	arrRng := rng.Derive(cfg.Seed, "cluster/arrivals")
	shapeRng := rng.Derive(cfg.Seed, "cluster/shape")
	sessRng := rng.Derive(cfg.Seed, "cluster/session")
	pZipf := workload.NewZipf(uint64(cfg.PromptMax-cfg.PromptMin+1), 0.99)
	dZipf := workload.NewZipf(uint64(cfg.DecodeMax-cfg.DecodeMin+1), 0.99)
	sZipf := workload.NewZipf(uint64(cfg.Sessions), 0.99)
	arrivals := workload.Poisson{RatePerSec: cfg.RatePerSec}
	capacity := cfg.LocalBlocks + cfg.SharedBlocks*cfg.Expanders
	reqs := make([]*creq, cfg.Requests)
	now := sim.Time(0)
	for i := range reqs {
		now += arrivals.GapAt(arrRng, now)
		r := &creq{
			id:      i,
			arrival: now,
			session: uint32(sZipf.Next(sessRng) % uint64(cfg.Sessions)),
			prompt:  cfg.PromptMin + int(pZipf.Next(shapeRng)%uint64(pZipf.N())),
			decode:  cfg.DecodeMin + int(dZipf.Next(shapeRng)%uint64(dZipf.N())),
		}
		if w := c.blocksFor(r.prompt + r.decode); w > capacity {
			panic(fmt.Sprintf("cluster: request needs %d KV blocks, pools hold %d", w, capacity))
		}
		reqs[i] = r
	}
	return reqs
}

// run schedules the arrival stream on the hub engine and drives the
// shard set to quiescence.
func (c *Cluster) run() {
	reqs := c.genRequests()
	c.outcomes = make([]reqOutcome, len(reqs))
	c.totalN = len(reqs)
	c.arrivalsLeft = len(reqs)
	eng := c.hub.Engine()
	for _, q := range reqs {
		eng.AtCall(q.arrival, c.arrivalFn, q)
	}
	workers := c.cfg.Shards
	if workers < 1 {
		workers = 1
	}
	if n := c.ss.NumShards(); workers > n {
		workers = n
	}
	if workers > 1 && c.cfg.Recruit != nil {
		got, release := c.cfg.Recruit(workers - 1)
		defer release()
		workers = 1 + got
	}
	c.ss.Run(workers)
	c.finalize(reqs)
}

// onArrival routes one request (hub event at its arrival time) and
// tries admission on the target replica.
func (c *Cluster) onArrival(arg any) {
	q := arg.(*creq)
	tgt := c.cfg.Router.Route(routeView(q), c)
	if tgt < 0 || tgt >= len(c.reps) {
		panic(fmt.Sprintf("cluster: router %s routed to replica %d of %d",
			c.cfg.Router.Name(), tgt, len(c.reps)))
	}
	c.mirrors[tgt].queue = append(c.mirrors[tgt].queue, q)
	c.arrivalsLeft--
	c.admitRep(tgt, c.hub.Engine().Now())
	c.starveCheck()
}

// admitRep admits from replica i's queue while capacity allows,
// assigning every block the request will ever use — local pool first,
// shared overflow after. Worst-case assignment up front means replicas
// drawing from the shared pool can never deadlock each other
// mid-decode, and the replica never asks the hub for blocks mid-flight.
func (c *Cluster) admitRep(i int, now sim.Time) {
	cfg := &c.cfg
	mir := &c.mirrors[i]
	for len(mir.queue) > 0 && mir.batchN < cfg.MaxBatch {
		q := mir.queue[0]
		w := c.blocksFor(q.prompt + q.decode)
		l := min(len(mir.localFree), w)
		s := w - l
		if len(c.sharedFree) < s {
			return
		}
		if cap(q.blocks) < w {
			q.blocks = make([]cblock, 0, w)
		}
		for j := 0; j < l; j++ {
			a := mir.localFree[len(mir.localFree)-1]
			mir.localFree = mir.localFree[:len(mir.localFree)-1]
			q.blocks = append(q.blocks, cblock{addr: a})
		}
		for j := 0; j < s; j++ {
			slot := c.sharedFree[0]
			c.sharedFree = c.sharedFree[1:]
			q.blocks = append(q.blocks, cblock{shared: true, exp: slot.exp})
		}
		q.rep = c.reps[i]
		mir.queue = mir.queue[1:]
		mir.batchN++
		c.hub.Send(c.repShard[i], now, c.reps[i].admitFn, q)
	}
}

// admitAll sweeps every replica in index order — the deterministic
// admission pass after frees return capacity.
func (c *Cluster) admitAll(now sim.Time) {
	for i := range c.mirrors {
		c.admitRep(i, now)
	}
}

// starveCheck panics when the stream can no longer be served: arrivals
// exhausted, nothing in flight anywhere to free capacity, but requests
// still queued.
func (c *Cluster) starveCheck() {
	if c.finishedN >= c.totalN || c.arrivalsLeft > 0 {
		return
	}
	queued := false
	for i := range c.mirrors {
		if c.mirrors[i].batchN > 0 {
			return
		}
		if len(c.mirrors[i].queue) > 0 {
			queued = true
		}
	}
	if queued {
		panic("cluster: starved — shared pool too small for any admission")
	}
}

// onAdmit (replica event) books an admitted request into the next step,
// waking the batching loop if it was idle.
func (r *replica) onAdmit(arg any) {
	q := arg.(*creq)
	r.pending = append(r.pending, q)
	if !r.scheduled && !r.awaiting {
		r.scheduled = true
		r.sh.Engine().AtCall(r.sh.Engine().Now(), r.stepFn, nil)
	}
}

// onStep (replica event) runs one continuous-batching step: fold in
// pending admissions, compute every request's local share, and bundle
// the step's shared-memory work to the hub.
func (r *replica) onStep(any) {
	r.scheduled = false
	e := r.sh.Engine().Now()
	r.batch = append(r.batch, r.pending...)
	r.pending = r.pending[:0]
	b := r.getBundle()
	b.e = e
	for _, q := range r.batch {
		if !q.prefilled {
			r.prefillLocal(q, e)
		} else {
			r.decodeLocal(q, e)
		}
		b.acted = append(b.acted, q)
	}
	keep := r.batch[:0]
	for _, q := range r.batch {
		if q.generated >= q.decode {
			b.retired = append(b.retired, q)
			continue
		}
		keep = append(keep, q)
	}
	r.batch = keep
	r.awaiting = true
	r.sh.Send(r.c.hubShard, e, r.c.bundleFn, b)
}

func (r *replica) getBundle() *bundle {
	if n := len(r.bundles); n > 0 {
		b := r.bundles[n-1]
		r.bundles = r.bundles[:n-1]
		return b
	}
	return &bundle{rep: r}
}

// prefillLocal processes the whole prompt: compute, then stream the KV
// out block by block. The local prefix of the chain runs here; if the
// assignment spills to shared blocks, the handoff time is recorded and
// the hub continues the chain over the fabric.
func (r *replica) prefillLocal(q *creq, e sim.Time) {
	cfg := &r.c.cfg
	t := e + sim.Time(q.prompt)*cfg.Model.PrefillPerToken
	q.actPrefill = true
	q.shFrom = -1
	remaining := q.prompt * cfg.BytesPerToken
	for i := 0; remaining > 0; i++ {
		n := min(remaining, r.c.blockBytes)
		blk := q.blocks[i]
		if blk.shared {
			q.shFrom = i
			q.shStart = t
			r.m.SharedBytes += uint64(remaining)
			break
		}
		t = r.accessLocal(blk, n, t, true)
		remaining -= n
	}
	q.resident = r.c.blocksFor(q.prompt)
	q.tokensInLast = q.prompt % cfg.BlockTokens
	if q.tokensInLast == 0 && q.prompt > 0 {
		q.tokensInLast = cfg.BlockTokens
	}
	q.prefilled = true
	q.generated = 1
	r.m.GenTokens++
	if q.shFrom < 0 {
		q.firstTok, q.lastTok, q.stepDone = t, t, t
	}
}

// decodeOne generates one token: attention reads every resident block —
// local ones through the replica's memory system now, shared ones
// already in flight since the previous bundle (sharedReady) — compute
// runs, and the token's KV appends to the tail block.
func (r *replica) decodeLocal(q *creq, e sim.Time) {
	cfg := &r.c.cfg
	q.actPrefill = false
	// Local attention reads issue concurrently at step start; compute
	// waits for the slowest of them and for the prefetched shared reads.
	// This memory-level parallelism is what makes shared-pool
	// oversubscription visible as switch queueing: a loaded fabric pushes
	// sharedReady past the local reads and stretches the token.
	t := e
	for _, blk := range q.blocks[:q.resident] {
		if blk.shared {
			r.m.SharedBytes += uint64(r.c.blockBytes)
			continue
		}
		if done := r.accessLocal(blk, r.c.blockBytes, e, false); done > t {
			t = done
		}
	}
	if q.sharedReady > t {
		t = q.sharedReady
	}
	t += cfg.Model.DecodePerToken
	if q.tokensInLast == cfg.BlockTokens {
		q.resident++
		q.tokensInLast = 0
	}
	tail := q.blocks[q.resident-1]
	if tail.shared {
		q.tailWrite = true
		q.tailStart = t
		r.m.SharedBytes += uint64(cfg.BytesPerToken)
	} else {
		q.tailWrite = false
		t = r.accessLocal(tail, cfg.BytesPerToken, t, true)
		q.stepDone = t
		q.lastTok = t
	}
	q.tokensInLast++
	q.generated++
	r.m.GenTokens++
}

// onBundle (hub event) completes one replica step's shared-memory work:
// issue its fabric transfers in batch order, prefetch the next step's
// attention reads, free retired blocks, re-run admission, and reply.
func (c *Cluster) onBundle(arg any) {
	b := arg.(*bundle)
	r := b.rep
	now := c.hub.Engine().Now()
	cfg := &c.cfg
	for _, q := range b.acted {
		if q.actPrefill {
			if q.shFrom < 0 {
				continue
			}
			t := q.shStart
			remaining := q.prompt*cfg.BytesPerToken - q.shFrom*c.blockBytes
			for i := q.shFrom; remaining > 0; i++ {
				n := min(remaining, c.blockBytes)
				c.sharedAccesses++
				t = c.f.WriteShared(r.hostID, c.expIDs[q.blocks[i].exp], n, t)
				remaining -= n
			}
			q.firstTok, q.lastTok, q.stepDone = t, t, t
		} else if q.tailWrite {
			c.sharedAccesses++
			done := c.f.WriteShared(r.hostID,
				c.expIDs[q.blocks[q.resident-1].exp], cfg.BytesPerToken, q.tailStart)
			q.stepDone = done
			q.lastTok = done
		}
	}
	// Depth-1 prefetch: the attention reads for each continuing
	// request's NEXT decode step issue now, overlapping fabric latency
	// with the compute still ahead of the step.
	for _, q := range b.acted {
		if q.generated >= q.decode {
			continue
		}
		q.sharedReady = 0
		for _, blk := range q.blocks[:q.resident] {
			if !blk.shared {
				continue
			}
			c.sharedAccesses++
			if done := c.f.ReadShared(r.hostID, c.expIDs[blk.exp], c.blockBytes, now); done > q.sharedReady {
				q.sharedReady = done
			}
		}
	}
	mir := &c.mirrors[r.idx]
	for _, q := range b.retired {
		for _, blk := range q.blocks {
			if blk.shared {
				c.sharedFree = append(c.sharedFree, sharedSlot{exp: blk.exp})
			} else {
				mir.localFree = append(mir.localFree, blk.addr)
			}
		}
		c.finishedN++
	}
	mir.batchN -= len(b.retired)
	c.admitAll(now)
	c.starveCheck()
	c.hub.Send(c.repShard[r.idx], now, r.replyFn, b)
}

// onReply (replica event) closes the step: fold metrics in batch order,
// recycle the bundle, and schedule the next step at the step's end.
func (r *replica) onReply(arg any) {
	b := arg.(*bundle)
	r.awaiting = false
	c := r.c
	stepEnd := b.e
	for _, q := range b.acted {
		if q.stepDone > stepEnd {
			stepEnd = q.stepDone
		}
	}
	for _, q := range b.acted {
		if q.actPrefill {
			ttft := float64(q.firstTok-q.arrival) / float64(sim.Microsecond)
			r.m.TTFT.Add(ttft)
			c.outcomes[q.id].ttft = ttft
		}
	}
	for _, q := range b.retired {
		r.m.Requests++
		if q.generated > 1 {
			perTok := float64(q.lastTok-q.firstTok) / float64(q.generated-1) /
				float64(sim.Microsecond)
			r.m.TPOT.Add(perTok)
			c.outcomes[q.id].tpot = perTok
			c.outcomes[q.id].hasTPOT = true
		}
		c.outcomes[q.id].lastTok = q.lastTok
	}
	b.reset()
	r.bundles = append(r.bundles, b)
	if len(r.batch) > 0 || len(r.pending) > 0 {
		at := stepEnd
		if now := r.sh.Engine().Now(); now > at {
			at = now
		}
		r.scheduled = true
		r.sh.Engine().AtCall(at, r.stepFn, nil)
	}
}

// accessLocal moves n KV bytes of local block b through the replica
// host's memory system with non-temporal line ops.
func (r *replica) accessLocal(b cblock, n int, now sim.Time, write bool) sim.Time {
	r.localAccesses++
	r.m.LocalBytes += uint64(n)
	op := cxl.NtLd
	if write {
		op = cxl.NtSt
	}
	done := now
	for off := 0; off < n; off += phys.LineSize {
		if d := r.core.AccessTiming(op, b.addr+phys.Addr(off), now); d > done {
			done = d
		}
	}
	return done
}

// finalize folds per-shard results into the global metrics in a
// shard-independent order: per-request outcomes by request id, replica
// blocks by replica index, fabric stats in declaration order.
func (c *Cluster) finalize(reqs []*creq) {
	c.m.Accesses = c.sharedAccesses
	for _, r := range c.reps {
		c.m.GenTokens += r.m.GenTokens
		c.m.Accesses += r.localAccesses
	}
	for i := range c.outcomes {
		o := &c.outcomes[i]
		c.m.TTFT.Add(o.ttft)
		if o.hasTPOT {
			c.m.TPOT.Add(o.tpot)
		}
		if o.lastTok > c.m.Elapsed {
			c.m.Elapsed = o.lastTok
		}
	}
	start := reqs[0].arrival
	if c.m.Elapsed > start {
		c.m.Goodput = float64(c.m.GenTokens) /
			(float64(c.m.Elapsed-start) / float64(sim.Second))
	}
	for _, r := range c.reps {
		c.m.Replicas = append(c.m.Replicas, r.m)
	}
	c.m.Links = c.f.LinkStats()
	c.m.Ports = c.f.PortStats()
}

// blocksFor returns how many KV blocks tokens occupy.
func (c *Cluster) blocksFor(tokens int) int {
	return (tokens + c.cfg.BlockTokens - 1) / c.cfg.BlockTokens
}
