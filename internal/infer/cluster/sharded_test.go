package cluster

import (
	"runtime"
	"testing"
)

// shardMatrix is the worker-count sweep every byte-identity test runs:
// inline (the exact sequential schedule), two workers, and one worker
// per shard up to GOMAXPROCS.
func shardMatrix() []int {
	ws := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		ws = append(ws, p)
	}
	return ws
}

// TestShardedByteIdentity pins the tentpole contract: the rendered
// metrics of a sharded run are byte-identical to the inline run at
// every worker count, for each oversubscription regime and router.
func TestShardedByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"ample", Config{Seed: 11, Replicas: 4, Requests: 48,
			LocalBlocks: 64, SharedBlocks: 256}},
		{"oversub", Config{Seed: 11, Replicas: 4, Requests: 48,
			RatePerSec: 400_000, LocalBlocks: 4, SharedBlocks: 24}},
		{"tiny-shared", Config{Seed: 21, Replicas: 4, Requests: 32,
			RatePerSec: 400_000, LocalBlocks: 1, SharedBlocks: 8}},
		{"least-loaded", Config{Seed: 5, Replicas: 4, Requests: 64,
			RatePerSec: 400_000, LocalBlocks: 4, SharedBlocks: 24,
			Router: NewLeastLoaded()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want string
			for _, w := range shardMatrix() {
				cfg := tc.cfg
				cfg.Shards = w
				// Routers are stateful and single-use: fresh one per run.
				switch tc.cfg.Router.(type) {
				case nil:
				case *sessionAffinity:
					cfg.Router = NewSessionAffinity()
				case leastLoaded:
					cfg.Router = NewLeastLoaded()
				default:
					cfg.Router = nil
				}
				got := render(Run(cfg))
				if w == 1 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("Shards=%d rendered differently from inline:\n--- inline ---\n%s\n--- %d workers ---\n%s",
						w, want, w, got)
				}
			}
		})
	}
}

// TestShardedStressCrossShardOrdering hammers the cross-shard merge
// path: a high arrival rate over a tiny shared pool makes every decode
// step exchange admit/bundle/reply messages while many same-instant
// fabric completions land at the hub. Several seeds, all worker counts,
// all byte-identical.
func TestShardedStressCrossShardOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	for _, seed := range []int64{1, 7, 23, 101} {
		base := Config{
			Seed: seed, Replicas: 4, Expanders: 2, Requests: 96,
			RatePerSec: 1_000_000, LocalBlocks: 2, SharedBlocks: 16,
			MaxBatch: 8,
		}
		var want string
		for _, w := range shardMatrix() {
			cfg := base
			cfg.Shards = w
			got := render(Run(cfg))
			if w == 1 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("seed %d Shards=%d diverged from inline", seed, w)
			}
		}
	}
}

// TestShardPartitionShape pins the cluster's partition: the hub shard
// owns the switch and expanders, each replica host its own shard, and
// every cross-shard distance is the calibrated link latency (hosts are
// two hops apart through the hub).
func TestShardPartitionShape(t *testing.T) {
	c := New(Config{Replicas: 3, Expanders: 2})
	ss := c.ss
	if got := ss.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4 (hub + 3 replicas)", got)
	}
	if c.hubShard != 0 {
		t.Fatalf("hub shard = %d, want 0", c.hubShard)
	}
	hub := ss.Shard(0).Nodes()
	if len(hub) != 3 { // sw0 + x0 + x1
		t.Fatalf("hub owns %v, want switch plus both expanders", hub)
	}
	for i, r := range c.reps {
		if got := ss.NodeShard(r.hostID); got != i+1 {
			t.Fatalf("host %s on shard %d, want %d", r.hostID, got, i+1)
		}
	}
	oneWay := ss.Dist(0, 1)
	if oneWay <= 0 {
		t.Fatalf("hub→replica distance %v, want positive lookahead", oneWay)
	}
	if got := ss.Dist(1, 2); got != 2*oneWay {
		t.Fatalf("replica→replica distance %v, want %v (two hops via hub)", got, 2*oneWay)
	}
}
