package cluster

import (
	"fmt"
	"strings"
	"testing"
)

// render flattens the full observable surface of a Metrics — aggregate
// and per-replica serving numbers, fabric link and port stats — for
// byte-level determinism comparisons.
func render(m Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "router=%s gen=%d elapsed=%d goodput=%.3f ttft=%.3f/%.3f tpot=%.3f\n",
		m.Router, m.GenTokens, int64(m.Elapsed), m.Goodput,
		m.TTFT.Median(), m.TTFT.P99(), m.TPOT.Mean())
	for i, r := range m.Replicas {
		fmt.Fprintf(&b, "r%d req=%d gen=%d local=%d shared=%d ttft=%.3f tpot=%.3f\n",
			i, r.Requests, r.GenTokens, r.LocalBytes, r.SharedBytes,
			r.TTFT.Mean(), r.TPOT.Mean())
	}
	for _, l := range m.Links {
		fmt.Fprintf(&b, "link %s %d %d\n", l.Link, l.ABytes, l.BABytes)
	}
	for _, p := range m.Ports {
		fmt.Fprintf(&b, "port %s %s %d %d %d\n",
			p.Switch, p.Link, p.Claims, p.PeakQueue, int64(p.Waited))
	}
	return b.String()
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Replicas: 4, Requests: 48}
	a := render(Run(cfg))
	cfg.Router = nil // routers are single-use; rebuild
	b := render(Run(cfg))
	if a != b {
		t.Errorf("two runs of the same config rendered different bytes:\n%s\n---\n%s", a, b)
	}
	if c := render(Run(Config{Seed: 12, Replicas: 4, Requests: 48})); c == a {
		t.Error("different seeds rendered identical bytes")
	}
}

func TestAllRequestsServed(t *testing.T) {
	for _, mk := range []func() Router{NewRoundRobin, NewLeastLoaded, NewSessionAffinity} {
		cfg := Config{Seed: 3, Replicas: 3, Requests: 40, Router: mk()}
		m := Run(cfg)
		total, gen := 0, 0
		for _, r := range m.Replicas {
			total += r.Requests
			gen += r.GenTokens
		}
		if total != 40 {
			t.Errorf("%s: served %d requests, want 40", m.Router, total)
		}
		if gen != m.GenTokens || gen == 0 {
			t.Errorf("%s: replica tokens %d != aggregate %d", m.Router, gen, m.GenTokens)
		}
		if m.TTFT.N() != 40 {
			t.Errorf("%s: %d TTFT samples, want 40", m.Router, m.TTFT.N())
		}
		if m.Goodput <= 0 || m.Elapsed <= 0 {
			t.Errorf("%s: degenerate aggregate: goodput=%v elapsed=%v",
				m.Router, m.Goodput, m.Elapsed)
		}
		if m.TopoKey == "" || !strings.Contains(m.TopoKey, "sw0") {
			t.Errorf("%s: TopoKey = %q", m.Router, m.TopoKey)
		}
	}
}

func TestRoutersSpreadDifferently(t *testing.T) {
	dist := func(r Router) []int {
		m := Run(Config{Seed: 5, Replicas: 4, Requests: 64, Router: r})
		var d []int
		for _, rm := range m.Replicas {
			d = append(d, rm.Requests)
		}
		return d
	}
	rr := dist(NewRoundRobin())
	aff := dist(NewSessionAffinity())
	for i, n := range rr {
		if n != 16 {
			t.Errorf("round-robin replica %d served %d, want exactly 16", i, n)
		}
	}
	// The zipf session draw concentrates traffic: sticky routing cannot
	// also deal a perfectly even 16/16/16/16 hand.
	even := true
	for _, n := range aff {
		if n != 16 {
			even = false
		}
	}
	if even {
		t.Errorf("session affinity spread exactly like round-robin: %v", aff)
	}
}

func TestSessionAffinitySticky(t *testing.T) {
	c := New(Config{Replicas: 4})
	r := NewSessionAffinity()
	first := map[uint32]int{}
	for i := 0; i < 40; i++ {
		sess := uint32(i % 7)
		got := r.Route(&Request{ID: i, Session: sess}, c)
		if want, ok := first[sess]; ok && got != want {
			t.Fatalf("session %d moved from replica %d to %d", sess, want, got)
		}
		first[sess] = got
	}
}

// TestOversubscriptionContention is the acceptance-criteria scenario: a
// 4-replica cluster whose local pools hold the working set keeps the
// fabric quiet, while shrinking local+shared pools pushes KV traffic
// through the switch — visible in per-link bytes, egress-port
// arbitration waits, and slower tokens.
func TestOversubscriptionContention(t *testing.T) {
	base := Config{Seed: 9, Replicas: 4, Requests: 48, RatePerSec: 400_000}
	ample := base
	ample.LocalBlocks = 64
	oversub := base
	oversub.LocalBlocks = 4
	oversub.SharedBlocks = 24
	ma := Run(ample)
	base.Router = nil
	mo := Run(oversub)

	var ampleShared, overShared uint64
	for _, r := range ma.Replicas {
		ampleShared += r.SharedBytes
	}
	for _, r := range mo.Replicas {
		overShared += r.SharedBytes
	}
	if ampleShared != 0 {
		t.Errorf("ample local pools still spilled %d bytes to the fabric", ampleShared)
	}
	if overShared == 0 {
		t.Fatal("oversubscribed pools put no traffic on the fabric")
	}
	if mo.SwitchWaited() == 0 {
		t.Error("oversubscribed cluster recorded no switch arbitration wait")
	}
	if mo.PeakQueue() <= 1 {
		t.Errorf("oversubscribed cluster peak port queue = %d, want > 1", mo.PeakQueue())
	}
	var linkBytes uint64
	for _, l := range mo.Links {
		linkBytes += l.ABytes + l.BABytes
	}
	if linkBytes == 0 {
		t.Error("no per-link traffic recorded despite shared accesses")
	}
	if mo.TPOT.Mean() <= ma.TPOT.Mean() {
		t.Errorf("fabric-bound TPOT %.3f not slower than local TPOT %.3f",
			mo.TPOT.Mean(), ma.TPOT.Mean())
	}
}

// TestTinySharedPoolDrains pins the reservation-based admission: even a
// shared pool barely big enough for one request at a time drains the
// whole stream without deadlock — replicas blocked on capacity wake when
// another replica retires.
func TestTinySharedPoolDrains(t *testing.T) {
	m := Run(Config{
		Seed: 21, Replicas: 4, Requests: 32,
		LocalBlocks: 1, SharedBlocks: 8, // one request's worst case is 6 blocks
	})
	total := 0
	for _, r := range m.Replicas {
		total += r.Requests
	}
	if total != 32 {
		t.Fatalf("served %d of 32 requests", total)
	}
}

func TestUnservableStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("a request larger than all pools did not panic")
		}
	}()
	Run(Config{Seed: 1, Replicas: 2, Requests: 4, LocalBlocks: 1, SharedBlocks: 1,
		PromptMin: 512, PromptMax: 512})
}
