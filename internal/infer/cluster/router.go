package cluster

// Router picks the replica a request is dispatched to. Routers see the
// cluster's routing signals (NumReplicas, Load) and may keep state —
// they are single-use: construct a fresh one per Run so replays stay
// deterministic.
type Router interface {
	// Name labels the router in metrics and reports.
	Name() string
	// Route returns the target replica index for r.
	Route(r *Request, c *Cluster) int
}

// Request is the routing view of an arriving request: its session
// identity and shape, but not its in-flight state.
type Request struct {
	ID      int
	Session uint32
	Prompt  int
	Decode  int
}

// routeView builds the router-facing view of a request.
func routeView(q *creq) *Request {
	return &Request{ID: q.id, Session: q.session, Prompt: q.prompt, Decode: q.decode}
}

// roundRobin dispatches requests in strict rotation.
type roundRobin struct{ next int }

// NewRoundRobin returns the rotation router.
func NewRoundRobin() Router { return &roundRobin{} }

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Route(_ *Request, c *Cluster) int {
	i := r.next % c.NumReplicas()
	r.next++
	return i
}

// leastLoaded dispatches to the replica with the fewest queued+batched
// requests, ties to the lowest index.
type leastLoaded struct{}

// NewLeastLoaded returns the load-balancing router.
func NewLeastLoaded() Router { return leastLoaded{} }

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Route(_ *Request, c *Cluster) int {
	best, bestLoad := 0, c.Load(0)
	for i := 1; i < c.NumReplicas(); i++ {
		if l := c.Load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// sessionAffinity pins each session to the replica that served it first
// (picked least-loaded on first sight), so a session's KV locality stays
// on one replica — the prefix-cache-friendly policy.
type sessionAffinity struct {
	sticky map[uint32]int
}

// NewSessionAffinity returns the sticky-session router.
func NewSessionAffinity() Router { return &sessionAffinity{sticky: map[uint32]int{}} }

func (*sessionAffinity) Name() string { return "session-affinity" }

func (r *sessionAffinity) Route(req *Request, c *Cluster) int {
	if i, ok := r.sticky[req.Session]; ok {
		return i
	}
	i := leastLoaded{}.Route(req, c)
	r.sticky[req.Session] = i
	return i
}
