// Package infer is a deterministic, transaction-level model of an LLM
// inference serving engine whose paged KV cache lives in the simulator's
// real memory system. Requests arrive in an open Poisson stream
// (internal/workload), run a prefill phase and then decode tokens under
// continuous batching, and every KV-cache block they touch is allocated
// from — and read/written through — one of the platform's memory tiers:
//
//   - host DRAM (demand/streaming loads on a host core),
//   - CXL Type-2 device memory under device bias (near-memory D2D reads,
//     the cooperative-computing placement the paper argues for),
//   - the same Type-2 memory under host bias (each D2D access pays the
//     bias check),
//   - a CXL Type-3 expander (host loads over CXL.mem), or
//   - a plain PCIe device (DMA per block, completion + interrupt).
//
// Cold blocks migrate between tiers via the host's DSA copy engine, so
// the spill policies exercise the same datapath as the paper's §VI
// kernel offloads. The serving metrics are the standard ones — TTFT,
// TPOT, goodput — plus per-tier byte counters that make the placement
// visible.
//
// Everything is seeded through internal/rng: a fixed Config.Seed replays
// the identical request stream, schedule and metrics on every run, which
// is what lets the `infer` experiment section render byte-identically in
// serial and parallel suite runs.
package infer

import (
	"fmt"
	"math/rand"

	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/pcie"
	"repro/internal/phys"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Tier identifies a KV-cache placement target. A simulation serves blocks
// from host DRAM plus at most one far tier (the platform has one CXL or
// PCIe device, like the paper's testbed).
type Tier uint8

// Placement tiers.
const (
	// TierDRAM is host socket-0 DRAM, accessed with streaming loads and
	// stores on a host core.
	TierDRAM Tier = iota
	// TierT2Dev is Type-2 device memory under device bias: the device
	// reads its own DRAM through the DCOH without consulting the host.
	TierT2Dev
	// TierT2Host is Type-2 device memory left in host bias: same D2D
	// datapath, but every access pays the host snoop-filter check.
	TierT2Host
	// TierT3 is a CXL Type-3 expander: host loads/stores over CXL.mem.
	TierT3
	// TierPCIe is a conventional PCIe device: each block moves by DMA
	// with completion polling plus an interrupt.
	TierPCIe

	numTiers
)

// String names the tier as the reports do.
func (t Tier) String() string {
	switch t {
	case TierDRAM:
		return "dram"
	case TierT2Dev:
		return "t2-dev"
	case TierT2Host:
		return "t2-host"
	case TierT3:
		return "t3"
	case TierPCIe:
		return "pcie-dma"
	default:
		return fmt.Sprintf("Tier(%d)", uint8(t))
	}
}

// Tiers lists the placement tiers in presentation order.
func Tiers() []Tier { return []Tier{TierDRAM, TierT2Dev, TierT2Host, TierT3, TierPCIe} }

// ModelProfile is the compute side of the model: per-token busy time for
// each phase. These are deliberately *not* timing.Params entries — they
// describe the workload, not the platform, and adding them to the
// canonical parameter set would shift its hash.
type ModelProfile struct {
	// PrefillPerToken is compute per prompt token (prefill is
	// compute-bound; the whole prompt processes in one step).
	PrefillPerToken sim.Time
	// DecodePerToken is compute per generated token (decode is
	// memory-bound; the KV reads dominate on slow tiers).
	DecodePerToken sim.Time
}

// DefaultModel is a small model profile that keeps prefill compute and
// decode KV traffic the same order of magnitude, so tier placement is
// visible in TPOT without drowning TTFT.
func DefaultModel() ModelProfile {
	return ModelProfile{
		PrefillPerToken: 120 * sim.Nanosecond,
		DecodePerToken:  600 * sim.Nanosecond,
	}
}

// Config parameterizes one serving simulation.
type Config struct {
	// Seed drives every random stream (arrivals, request shapes) through
	// derived internal/rng streams.
	Seed int64
	// Requests is how many requests arrive in total.
	Requests int
	// RatePerSec is the Poisson arrival rate.
	RatePerSec float64
	// PromptMin/PromptMax bound prompt lengths (tokens); the draw is
	// zipfian-skewed toward PromptMin, like production traces.
	PromptMin, PromptMax int
	// DecodeMin/DecodeMax bound generation lengths (tokens).
	DecodeMin, DecodeMax int
	// MaxBatch bounds the continuous batch size.
	MaxBatch int
	// Arrivals optionally replaces the stationary Poisson process (e.g. a
	// workload.Temporal diurnal/burst source). Nil keeps Poisson at
	// RatePerSec — the legacy stream, bit-for-bit.
	Arrivals workload.ArrivalSource
	// Cohorts optionally draws each request's prompt/decode shape from a
	// weighted client-cohort mix instead of the global Prompt*/Decode*
	// bounds. Nil keeps the single-population legacy draw.
	Cohorts *workload.Mix
	// Trace, when set, replays a recorded request stream verbatim:
	// arrivals and shapes come from the trace records and the generator
	// knobs above (Seed's arrival/shape streams, Requests, RatePerSec,
	// Arrivals, Cohorts) are ignored. Every request must still fit the
	// configured pools; Run panics on a trace it cannot serve.
	Trace *workload.Trace
	// BlockTokens is the paged-KV block granule in tokens.
	BlockTokens int
	// BytesPerToken is the KV footprint of one token.
	BytesPerToken int
	// DRAMBlocks and FarBlocks size the two block pools.
	DRAMBlocks, FarBlocks int
	// Far selects the far tier backing FarBlocks; TierDRAM means no far
	// tier (all-DRAM serving).
	Far Tier
	// Policy places new blocks and may migrate existing ones. Defaults
	// to AllDRAM.
	Policy Policy
	// Model is the compute profile.
	Model ModelProfile
	// TraceCap, when positive, attaches a device trace ring of that
	// capacity; the buffer is returned in Metrics.Trace.
	TraceCap int
}

// withDefaults fills zero fields with the standard small-model setup.
func (c Config) withDefaults() Config {
	if c.Requests == 0 {
		c.Requests = 48
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 25_000
	}
	if c.PromptMin == 0 {
		c.PromptMin = 24
	}
	if c.PromptMax == 0 {
		c.PromptMax = 64
	}
	if c.DecodeMin == 0 {
		c.DecodeMin = 8
	}
	if c.DecodeMax == 0 {
		c.DecodeMax = 24
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 4
	}
	if c.BlockTokens == 0 {
		c.BlockTokens = 16
	}
	if c.BytesPerToken == 0 {
		c.BytesPerToken = 32
	}
	if c.DRAMBlocks == 0 {
		c.DRAMBlocks = 512
	}
	if c.FarBlocks == 0 {
		c.FarBlocks = 512
	}
	if c.Policy == nil {
		c.Policy = AllDRAM{}
	}
	if c.Model == (ModelProfile{}) {
		c.Model = DefaultModel()
	}
	return c
}

// Metrics is the outcome of one serving simulation.
type Metrics struct {
	// Policy and Far echo the configuration.
	Policy string
	Far    Tier
	// Requests completed (always Config.Requests — the loop drains).
	Requests int
	// TTFT and TPOT are per-request samples in microseconds.
	TTFT, TPOT stats.Sample
	// GenTokens counts generated tokens; Elapsed spans first arrival to
	// last completion; Goodput is their ratio in tokens/second.
	GenTokens int
	Elapsed   sim.Time
	Goodput   float64
	// ReadBytes and WriteBytes count KV-block traffic per tier.
	ReadBytes, WriteBytes [numTiers]uint64
	// Migrations and MigratedBytes count DSA cold-block moves.
	Migrations    int
	MigratedBytes uint64
	// Trace is the device trace ring when Config.TraceCap > 0.
	Trace *trace.Buffer
}

// request is one in-flight serving request.
type request struct {
	arrival        sim.Time
	prompt, decode int
	cohort         uint8
	blocks         []*block
	tokensInLast   int
	generated      int
	prefilled      bool
	firstTok       sim.Time
	lastTok        sim.Time
}

// Sim is one serving simulation over a freshly built platform.
type Sim struct {
	cfg   Config
	p     *timing.Params
	host  *host.Host
	dev   *device.Device
	ep    *pcie.Endpoint
	dsa   *host.DSA
	cache *KVCache
	m     Metrics
	step  uint64
}

// New builds the platform and KV pools for cfg.
func New(cfg Config) *Sim {
	cfg = cfg.withDefaults()
	p := timing.Default()
	hcfg := host.Config{LLCBytes: 1 << 20, LLCWays: 16, Cores: 4}
	dcfg := device.DefaultConfig()
	// Host-load tiers (T3) need the Type-3 personality; the D2D tiers
	// need Type-2. PCIe and all-DRAM don't touch the CXL device.
	if cfg.Far == TierT3 {
		dcfg.Type = cxl.Type3
	} else {
		dcfg.Type = cxl.Type2
	}
	h := host.MustNew(p, hcfg)
	if _, err := h.Attach(dcfg); err != nil {
		panic(err)
	}
	s := &Sim{cfg: cfg, p: p, host: h, dev: h.Dev, ep: pcie.NewEndpoint(p), dsa: h.NewDSA()}
	s.cache = newKVCache(cfg)
	if cfg.Far == TierT2Dev {
		// Pin the far pool in device bias once, up front: the decode loop
		// then reads it DCOH-locally, the whole point of the placement.
		s.dev.EnterDeviceBias(s.cache.far.span(), 0)
	}
	if cfg.TraceCap > 0 {
		b := trace.NewBuffer(cfg.TraceCap)
		s.dev.SetTracer(b)
		s.m.Trace = b
	}
	s.m.Policy = cfg.Policy.Name()
	s.m.Far = cfg.Far
	return s
}

// Run executes the serving loop to completion and returns the metrics.
// It is deterministic in Config.
func Run(cfg Config) Metrics {
	s := New(cfg)
	s.serve()
	return s.m
}

// genRequests draws the request stream: open-loop arrivals (Poisson or a
// temporal source), zipfian-skewed prompt and decode lengths (most
// requests short, a heavy tail long), optionally per client cohort — or a
// trace replayed verbatim.
func (s *Sim) genRequests() []*request {
	cfg := s.cfg
	if cfg.Trace != nil {
		return s.requestsFromTrace(cfg.Trace)
	}
	arrRng := rng.Derive(cfg.Seed, "infer/arrivals")
	shapeRng := rng.Derive(cfg.Seed, "infer/shape")
	arrivals := cfg.Arrivals
	if arrivals == nil {
		arrivals = workload.Poisson{RatePerSec: cfg.RatePerSec}
	}
	shape := newShapeSampler(cfg)
	reqs := make([]*request, cfg.Requests)
	now := sim.Time(0)
	for i := range reqs {
		now += arrivals.GapAt(arrRng, now)
		cohort, prompt, decode := shape.sample(shapeRng)
		reqs[i] = &request{arrival: now, cohort: cohort, prompt: prompt, decode: decode}
	}
	return reqs
}

// shapeSampler draws request shapes: one zipf pair over the global bounds
// (the legacy single-population stream, preserved draw for draw), or one
// pair per cohort with the cohort picked first.
type shapeSampler struct {
	mix     *workload.Mix
	cohorts []cohortShape
}

type cohortShape struct {
	pZipf, dZipf         *workload.Zipf
	promptMin, decodeMin int
}

func newShapeSampler(cfg Config) *shapeSampler {
	s := &shapeSampler{mix: cfg.Cohorts}
	mk := func(pMin, pMax, dMin, dMax int) cohortShape {
		return cohortShape{
			pZipf:     workload.NewZipf(uint64(pMax-pMin+1), 0.99),
			dZipf:     workload.NewZipf(uint64(dMax-dMin+1), 0.99),
			promptMin: pMin, decodeMin: dMin,
		}
	}
	if s.mix == nil {
		s.cohorts = []cohortShape{mk(cfg.PromptMin, cfg.PromptMax, cfg.DecodeMin, cfg.DecodeMax)}
		return s
	}
	for i := 0; i < s.mix.Len(); i++ {
		c := s.mix.Cohort(i)
		s.cohorts = append(s.cohorts, mk(c.PromptMin, c.PromptMax, c.DecodeMin, c.DecodeMax))
	}
	return s
}

func (s *shapeSampler) sample(rng2 *rand.Rand) (cohort uint8, prompt, decode int) {
	i := 0
	if s.mix != nil {
		i = s.mix.Pick(rng2)
	}
	c := s.cohorts[i]
	prompt = c.promptMin + int(c.pZipf.Next(rng2)%uint64(c.pZipf.N()))
	decode = c.decodeMin + int(c.dZipf.Next(rng2)%uint64(c.dZipf.N()))
	return uint8(i), prompt, decode
}

// requestsFromTrace rebuilds the request stream from a recorded trace,
// panicking on records the configured platform cannot serve (a trace is a
// contract: silently clamping it would break bit-for-bit replay).
func (s *Sim) requestsFromTrace(t *workload.Trace) []*request {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	maxBlocks := s.cfg.DRAMBlocks + s.cfg.FarBlocks
	reqs := make([]*request, len(t.Requests))
	for i, rec := range t.Requests {
		if rec.Prompt == 0 || rec.Decode == 0 {
			panic(fmt.Sprintf("infer: trace record %d has empty prompt/decode", i))
		}
		r := &request{
			arrival: rec.At,
			cohort:  rec.Cohort,
			prompt:  int(rec.Prompt),
			decode:  int(rec.Decode),
		}
		if s.blocksFor(r.prompt+r.decode) > maxBlocks {
			panic(fmt.Sprintf("infer: trace record %d needs %d KV blocks, pools hold %d",
				i, s.blocksFor(r.prompt+r.decode), maxBlocks))
		}
		reqs[i] = r
	}
	return reqs
}

// GenTrace records the exact request stream Run(cfg) would generate — the
// record side of record/replay. Replaying the result through Config.Trace
// (same platform knobs) reproduces the serving simulation bit for bit.
func GenTrace(cfg Config) *workload.Trace {
	cfg = cfg.withDefaults()
	s := &Sim{cfg: cfg} // genRequests touches only cfg; no platform needed
	reqs := s.genRequests()
	t := &Trace{Workload: "infer", Seed: cfg.Seed, Requests: make([]workload.Request, len(reqs))}
	for i, r := range reqs {
		t.Requests[i] = workload.Request{
			At:     r.arrival,
			Cohort: r.cohort,
			Prompt: uint32(r.prompt),
			Decode: uint32(r.decode),
		}
	}
	return t
}

// Trace aliases the workload trace type for infer callers.
type Trace = workload.Trace

// serve runs the continuous-batching loop: admit arrivals while capacity
// lasts, prefill new sequences, then decode one token per running
// sequence per step.
func (s *Sim) serve() {
	cfg := s.cfg
	reqs := s.genRequests()
	var batch []*request
	nextArrival := 0
	finished := 0
	now := sim.Time(0)
	for finished < len(reqs) {
		// Admission: a request enters the batch only when the pools can
		// hold its worst-case block count, so decode never deadlocks on
		// allocation.
		for nextArrival < len(reqs) && len(batch) < cfg.MaxBatch {
			r := reqs[nextArrival]
			if r.arrival > now {
				break
			}
			if !s.cache.canFit(s.blocksFor(r.prompt + r.decode)) {
				break
			}
			batch = append(batch, r)
			nextArrival++
		}
		if len(batch) == 0 {
			// Idle: jump to the next arrival.
			now = reqs[nextArrival].arrival
			continue
		}
		stepEnd := now
		s.step++
		for _, r := range batch {
			var done sim.Time
			if !r.prefilled {
				done = s.prefill(r, now)
			} else {
				done = s.decodeOne(r, now)
			}
			if done > stepEnd {
				stepEnd = done
			}
		}
		// Retire finished sequences and let the policy rebalance before
		// the next step observes pool occupancy.
		keep := batch[:0]
		for _, r := range batch {
			if r.prefilled && r.generated >= r.decode {
				s.retire(r, stepEnd)
				finished++
				continue
			}
			keep = append(keep, r)
		}
		batch = keep
		s.cfg.Policy.Rebalance(s, stepEnd)
		now = stepEnd
	}
	s.finalize(reqs)
}

// prefill processes the whole prompt in one step: compute, allocate the
// prompt's KV blocks, stream them out through their tiers, and emit the
// first token.
func (s *Sim) prefill(r *request, now sim.Time) sim.Time {
	cfg := s.cfg
	t := now + sim.Time(r.prompt)*cfg.Model.PrefillPerToken
	remaining := r.prompt * cfg.BytesPerToken
	for remaining > 0 {
		n := min(remaining, s.cache.blockBytes)
		b := s.alloc(Prefill, len(r.blocks), t)
		r.blocks = append(r.blocks, b)
		t = s.writeBlock(b, n, t)
		remaining -= n
	}
	r.tokensInLast = r.prompt % cfg.BlockTokens
	if r.tokensInLast == 0 && r.prompt > 0 {
		r.tokensInLast = cfg.BlockTokens
	}
	r.prefilled = true
	r.generated = 1 // prefill emits the first token
	s.m.GenTokens++
	r.firstTok = t
	r.lastTok = t
	s.m.TTFT.Add(float64(t-r.arrival) / float64(sim.Microsecond))
	return t
}

// decodeOne generates one token for r starting at now: attention reads
// every resident KV block through its tier, compute runs, and the new
// token's KV appends to the tail block.
func (s *Sim) decodeOne(r *request, now sim.Time) sim.Time {
	cfg := s.cfg
	t := now
	for _, b := range r.blocks {
		t = s.readBlock(b, s.cache.blockBytes, t)
	}
	t += cfg.Model.DecodePerToken
	if r.tokensInLast == cfg.BlockTokens {
		b := s.alloc(Decode, len(r.blocks), t)
		r.blocks = append(r.blocks, b)
		r.tokensInLast = 0
	}
	tail := r.blocks[len(r.blocks)-1]
	t = s.writeBlock(tail, cfg.BytesPerToken, t)
	r.tokensInLast++
	r.generated++
	s.m.GenTokens++
	r.lastTok = t
	return t
}

// retire frees a finished request's blocks and folds in its TPOT.
func (s *Sim) retire(r *request, now sim.Time) {
	for _, b := range r.blocks {
		s.cache.release(b)
	}
	r.blocks = nil
	if r.generated > 1 {
		perTok := float64(r.lastTok-r.firstTok) / float64(r.generated-1)
		s.m.TPOT.Add(perTok / float64(sim.Microsecond))
	}
	if r.lastTok > s.m.Elapsed {
		s.m.Elapsed = r.lastTok
	}
	_ = now
}

// finalize computes the aggregate metrics.
func (s *Sim) finalize(reqs []*request) {
	s.m.Requests = len(reqs)
	start := reqs[0].arrival
	if s.m.Elapsed > start {
		s.m.Goodput = float64(s.m.GenTokens) / (float64(s.m.Elapsed-start) / float64(sim.Second))
	}
}

// blocksFor returns how many blocks tokens occupy.
func (s *Sim) blocksFor(tokens int) int {
	return (tokens + s.cfg.BlockTokens - 1) / s.cfg.BlockTokens
}

// alloc places a new block via the policy, falling back to the other pool
// when the preferred one is full (admission control guarantees one of
// them has room).
func (s *Sim) alloc(ph Phase, seqBlock int, now sim.Time) *block {
	class := s.cfg.Policy.Place(ph, seqBlock)
	if s.cfg.Far == TierDRAM {
		class = Near // no far tier configured
	}
	b, ok := s.cache.alloc(class)
	if !ok {
		panic("infer: KV pools exhausted despite admission control")
	}
	b.lastUse = s.step
	return b
}

// readBlock reads n bytes of b through its tier's datapath and returns
// the completion time.
func (s *Sim) readBlock(b *block, n int, now sim.Time) sim.Time {
	s.m.ReadBytes[b.tier] += uint64(n)
	b.lastUse = s.step
	return s.access(b.tier, b.addr, n, now, false)
}

// writeBlock writes n bytes to b through its tier's datapath.
func (s *Sim) writeBlock(b *block, n int, now sim.Time) sim.Time {
	s.m.WriteBytes[b.tier] += uint64(n)
	b.lastUse = s.step
	return s.access(b.tier, b.addr, n, now, true)
}

// access is the tier dispatch: every KV byte moves through the memory
// system's real datapaths, which is what differentiates the tiers.
func (s *Sim) access(tier Tier, addr phys.Addr, n int, now sim.Time, write bool) sim.Time {
	switch tier {
	case TierDRAM, TierT3:
		// Streaming host accesses: KV attention is read-once-per-step, so
		// non-temporal ops model it without turning the LLC into a cheat
		// (a temporal load would make every tier an LLC hit after first
		// touch). For T3 the same loop rides CXL.mem to the expander.
		core := s.host.Core(0)
		op := cxl.NtLd
		if write {
			op = cxl.NtSt
		}
		done := now
		for off := 0; off < n; off += phys.LineSize {
			r := core.Access(op, addr+phys.Addr(off), nil, now)
			if r.Done > done {
				done = r.Done
			}
		}
		return done
	case TierT2Dev, TierT2Host:
		// Near-memory D2D: the device's LSU streams the block out of its
		// own DRAM. Under host bias every line pays the bias check.
		if write {
			return s.dev.WriteDevBlock(cxl.NCWrite, addr, nil, n, now)
		}
		return s.dev.ReadDevBlock(cxl.NCRead, addr, n, nil, now)
	case TierPCIe:
		// A conventional accelerator: each block is a descriptor-driven
		// DMA with completion + interrupt — setup-dominated at KV-block
		// sizes.
		tr := s.ep.DMATransfer(n, now, true)
		return tr.Done
	default:
		panic(fmt.Sprintf("infer: access to unconfigured tier %v", tier))
	}
}

// migrate moves b to the far pool via the DSA copy engine. The copy runs
// asynchronously on the DSA resource (it does not stall the serving
// step); the block serves from the far tier from now on.
func (s *Sim) migrate(b *block, now sim.Time) bool {
	dst, ok := s.cache.far.allocAddr()
	if !ok {
		return false
	}
	_, _ = s.dsa.Copy(b.addr, dst, s.cache.blockBytes, now, false)
	s.cache.near.releaseAddr(b.addr)
	b.tier = s.cache.far.tier
	b.addr = dst
	s.m.Migrations++
	s.m.MigratedBytes += uint64(s.cache.blockBytes)
	return true
}
