package lzc

import (
	"bytes"
	"testing"
)

// FuzzDecompress exercises the decompressor with arbitrary bytes: it must
// never panic, and any input it accepts must round-trip back through
// Compress to an equal compressed form's decompression (self-consistency).
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x50, 'a', 'b', 'c', 'd', 'e'})
	f.Add(Compress(nil, bytes.Repeat([]byte("seed"), 64)))
	f.Add([]byte{0xF0, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		dst := make([]byte, 4096)
		n, err := Decompress(dst, data)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if n < 0 || n > len(dst) {
			t.Fatalf("accepted input produced out-of-range n=%d", n)
		}
		// Whatever it produced must be reproducible from a clean compress.
		comp := Compress(nil, dst[:n])
		out := make([]byte, n)
		m, err := Decompress(out, comp)
		if err != nil || m != n || !bytes.Equal(out, dst[:n]) {
			t.Fatalf("self-consistency broken: %v n=%d m=%d", err, n, m)
		}
	})
}

// FuzzCompressRoundTrip: any input must compress and decompress to itself.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add(bytes.Repeat([]byte{0}, 5000))
	f.Fuzz(func(t *testing.T, data []byte) {
		comp := Compress(nil, data)
		if len(comp) > CompressBound(len(data)) {
			t.Fatalf("compressed %d exceeds bound %d", len(comp), CompressBound(len(data)))
		}
		out := make([]byte, len(data))
		n, err := Decompress(out, comp)
		if err != nil || n != len(data) || !bytes.Equal(out, data) {
			t.Fatalf("round trip failed: %v n=%d", err, n)
		}
	})
}
