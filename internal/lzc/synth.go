package lzc

import "math/rand"

// SyntheticPage fills a 4 KB-style page whose compressibility is tunable.
// compressibility in [0,1]: 0 yields near-incompressible random bytes, 1
// yields a highly repetitive page (~zero-page). Real swap candidates sit in
// between; the paper's zswap experiments rely on pages compressing enough to
// be worth pooling, so workload generators use mid-range values.
func SyntheticPage(rng *rand.Rand, size int, compressibility float64) []byte {
	if compressibility < 0 {
		compressibility = 0
	}
	if compressibility > 1 {
		compressibility = 1
	}
	page := make([]byte, size)
	// Strategy: alternate runs of a repeated motif (compressible) with runs
	// of random bytes, in proportion to the dial.
	motif := []byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77}
	i := 0
	for i < size {
		run := 32 + rng.Intn(96)
		if i+run > size {
			run = size - i
		}
		if rng.Float64() < compressibility {
			m := motif[rng.Intn(len(motif))]
			for j := 0; j < run; j++ {
				page[i+j] = m
			}
		} else {
			for j := 0; j < run; j++ {
				page[i+j] = byte(rng.Intn(256))
			}
		}
		i += run
	}
	return page
}
