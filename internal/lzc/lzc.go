// Package lzc implements an LZ77 byte-oriented block compressor using the
// LZ4 block format (token / literals / 16-bit offset / match extension).
//
// zswap in the paper compresses 4 KB pages before placing them in the zpool
// (§VI-A); the kernel uses lzo/lz4-class compressors for this. lzc is the
// from-scratch equivalent used by every zswap backend in this repo — the
// host-CPU software path and the simulated device compression IP run the
// same codec, so compressed pages written through the simulated CXL device
// decompress back to the original bytes and the experiment is verifiable
// end to end.
package lzc

import (
	"errors"
	"fmt"
)

const (
	minMatch = 4 // smallest encodable match
	// lastLiterals: the final 5 bytes of a block must be literals, and a
	// match may not start within the last 12 bytes (mmlimit), per the LZ4
	// block-format rules. Keeping them makes the format authentic and the
	// decompressor simpler.
	lastLiterals = 5
	mfLimit      = 12

	hashLog  = 13
	hashSize = 1 << hashLog
)

// ErrCorrupt is returned by Decompress when the input is not a valid block.
var ErrCorrupt = errors.New("lzc: corrupt compressed block")

// ErrDstTooSmall is returned by Decompress when the output does not fit in
// the provided buffer.
var ErrDstTooSmall = errors.New("lzc: destination buffer too small")

// CompressBound returns the maximum compressed size for an input of length n
// (incompressible data expands slightly).
func CompressBound(n int) int { return n + n/255 + 16 }

func hash4(u uint32) uint32 {
	return (u * 2654435761) >> (32 - hashLog)
}

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// Compress appends the compressed form of src to dst and returns the
// extended slice. An empty src produces an empty block.
func Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	if len(src) < mfLimit+minMatch {
		// Too short to contain any match: emit one literal run.
		return emitSequence(dst, src, 0, 0)
	}

	var table [hashSize]int32 // position+1 of last occurrence of each hash; 0 = empty
	anchor := 0               // start of pending literals
	i := 0
	limit := len(src) - mfLimit

	for i <= limit {
		h := hash4(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > 65535 || load32(src, cand) != load32(src, i) {
			i++
			continue
		}
		// Extend the match forward; stop so the block ends with literals.
		matchLen := minMatch
		maxLen := len(src) - lastLiterals - i
		for matchLen < maxLen && src[cand+matchLen] == src[i+matchLen] {
			matchLen++
		}
		if matchLen < minMatch {
			i++
			continue
		}
		dst = emitSequence(dst, src[anchor:i], i-cand, matchLen)
		i += matchLen
		anchor = i
	}
	if anchor < len(src) {
		dst = emitSequence(dst, src[anchor:], 0, 0)
	}
	return dst
}

// emitSequence appends one LZ4 sequence: token, extended literal length,
// literal bytes, and (when matchLen > 0) the 2-byte offset and extended
// match length. matchLen == 0 marks the final literals-only sequence.
func emitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	var token byte
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if matchLen > 0 {
		ml := matchLen - minMatch
		if ml >= 15 {
			token |= 15
		} else {
			token |= byte(ml)
		}
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	dst = append(dst, literals...)
	if matchLen > 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if ml := matchLen - minMatch; ml >= 15 {
			dst = appendLenExt(dst, ml-15)
		}
	}
	return dst
}

func appendLenExt(dst []byte, rem int) []byte {
	for rem >= 255 {
		dst = append(dst, 255)
		rem -= 255
	}
	return append(dst, byte(rem))
}

// Decompress expands a block produced by Compress into dst, which must be
// exactly the size of the original input. It returns the number of bytes
// written, ErrCorrupt for malformed input, or ErrDstTooSmall when the block
// expands beyond len(dst).
func Decompress(dst, src []byte) (int, error) {
	di, si := 0, 0
	for si < len(src) {
		token := src[si]
		si++
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			n, adv, err := readLenExt(src[si:])
			if err != nil {
				return 0, err
			}
			litLen += n
			si += adv
		}
		if si+litLen > len(src) {
			return 0, ErrCorrupt
		}
		if di+litLen > len(dst) {
			return 0, ErrDstTooSmall
		}
		copy(dst[di:], src[si:si+litLen])
		di += litLen
		si += litLen
		if si == len(src) {
			// Final literals-only sequence.
			return di, nil
		}
		// Match.
		if si+2 > len(src) {
			return 0, ErrCorrupt
		}
		offset := int(src[si]) | int(src[si+1])<<8
		si += 2
		if offset == 0 || offset > di {
			return 0, ErrCorrupt
		}
		matchLen := int(token&0x0F) + minMatch
		if token&0x0F == 15 {
			n, adv, err := readLenExt(src[si:])
			if err != nil {
				return 0, err
			}
			matchLen += n
			si += adv
		}
		if di+matchLen > len(dst) {
			return 0, ErrDstTooSmall
		}
		// Overlapping copy must run byte-by-byte (RLE-style matches).
		for k := 0; k < matchLen; k++ {
			dst[di] = dst[di-offset]
			di++
		}
	}
	return di, nil
}

func readLenExt(src []byte) (n, adv int, err error) {
	for {
		if adv >= len(src) {
			return 0, 0, ErrCorrupt
		}
		b := src[adv]
		adv++
		n += int(b)
		if b != 255 {
			return n, adv, nil
		}
	}
}

// Ratio reports original/compressed size; >1 means the data compressed.
func Ratio(originalLen, compressedLen int) float64 {
	if compressedLen == 0 {
		return 0
	}
	return float64(originalLen) / float64(compressedLen)
}

// Validate round-trips data through Compress/Decompress and returns an error
// if the result differs — used by integration tests and the device-IP model
// self-check.
func Validate(data []byte) error {
	comp := Compress(nil, data)
	out := make([]byte, len(data))
	n, err := Decompress(out, comp)
	if err != nil {
		return fmt.Errorf("decompress: %w", err)
	}
	if n != len(data) {
		return fmt.Errorf("round-trip length %d, want %d", n, len(data))
	}
	for i := range data {
		if out[i] != data[i] {
			return fmt.Errorf("round-trip mismatch at byte %d", i)
		}
	}
	return nil
}
