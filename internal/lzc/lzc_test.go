package lzc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte) []byte {
	t.Helper()
	comp := Compress(nil, data)
	out := make([]byte, len(data))
	n, err := Decompress(out, comp)
	if err != nil {
		t.Fatalf("Decompress(%d bytes): %v", len(data), err)
	}
	if n != len(data) {
		t.Fatalf("round-trip length = %d, want %d", n, len(data))
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("round-trip mismatch for %d-byte input", len(data))
	}
	return comp
}

func TestRoundTripEmpty(t *testing.T) {
	comp := Compress(nil, nil)
	if len(comp) != 0 {
		t.Fatalf("empty input compressed to %d bytes", len(comp))
	}
	n, err := Decompress(nil, comp)
	if err != nil || n != 0 {
		t.Fatalf("Decompress(empty) = %d, %v", n, err)
	}
}

func TestRoundTripShortInputs(t *testing.T) {
	for n := 1; n <= 32; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i)
		}
		roundTrip(t, data)
	}
}

func TestRoundTripRepetitive(t *testing.T) {
	data := bytes.Repeat([]byte("abcd"), 1024) // 4 KB, very compressible
	comp := roundTrip(t, data)
	if len(comp) >= len(data)/10 {
		t.Fatalf("repetitive 4KB compressed to %d bytes; expected < 10%%", len(comp))
	}
}

func TestRoundTripZeroPage(t *testing.T) {
	data := make([]byte, 4096)
	comp := roundTrip(t, data)
	if len(comp) > 64 {
		t.Fatalf("zero page compressed to %d bytes", len(comp))
	}
}

func TestRoundTripRandomIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 4096)
	rng.Read(data)
	comp := roundTrip(t, data)
	if len(comp) > CompressBound(len(data)) {
		t.Fatalf("compressed size %d exceeds bound %d", len(comp), CompressBound(len(data)))
	}
	if len(comp) < len(data)*9/10 {
		t.Fatalf("random data should not compress well, got %d from %d", len(comp), len(data))
	}
}

func TestRoundTripLongLiteralRuns(t *testing.T) {
	// >15 literals triggers the length-extension path; >270 needs multiple
	// 255 extension bytes.
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{16, 255, 256, 270, 271, 1000} {
		data := make([]byte, n)
		rng.Read(data)
		roundTrip(t, data)
	}
}

func TestRoundTripLongMatch(t *testing.T) {
	// A very long match (>19+254) triggers match-length extension bytes.
	data := append([]byte("0123456789abcdef"), bytes.Repeat([]byte{0x7}, 2000)...)
	data = append(data, []byte("tail-literals")...)
	roundTrip(t, data)
}

func TestRoundTripOverlappingMatch(t *testing.T) {
	// offset 1 (RLE) forces the overlapping-copy path.
	data := append([]byte{0xAA}, bytes.Repeat([]byte{0xAA}, 100)...)
	data = append(data, 1, 2, 3, 4, 5)
	roundTrip(t, data)
}

func TestRoundTripQuickProperty(t *testing.T) {
	f := func(data []byte) bool {
		comp := Compress(nil, data)
		out := make([]byte, len(data))
		n, err := Decompress(out, comp)
		return err == nil && n == len(data) && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressAppends(t *testing.T) {
	prefix := []byte("hdr:")
	data := bytes.Repeat([]byte("xy"), 100)
	out := Compress(prefix, data)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Compress must append to dst")
	}
	n, err := Decompress(make([]byte, len(data)), out[len(prefix):])
	if err != nil || n != len(data) {
		t.Fatalf("decompress after append: %d, %v", n, err)
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	cases := [][]byte{
		{0xF0},                  // promises 15+ext literals, no extension byte
		{0x50, 'a', 'b'},        // promises 5 literals, only 2 present
		{0x04, 0x00, 0x00},      // match with offset 0
		{0x14, 'x', 0x09, 0x00}, // offset 9 > produced 1 literal
		{0x1F, 'x', 0x01, 0x00}, // match-length extension missing
	}
	for i, c := range cases {
		if _, err := Decompress(make([]byte, 64), c); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestDecompressDstTooSmall(t *testing.T) {
	data := bytes.Repeat([]byte("abcd"), 64)
	comp := Compress(nil, data)
	if _, err := Decompress(make([]byte, 10), comp); err != ErrDstTooSmall {
		t.Fatalf("err = %v, want ErrDstTooSmall", err)
	}
	// Literal run overflow too.
	comp2 := Compress(nil, []byte{1, 2, 3, 4, 5})
	if _, err := Decompress(make([]byte, 2), comp2); err != ErrDstTooSmall {
		t.Fatalf("literal overflow err = %v, want ErrDstTooSmall", err)
	}
}

func TestDecompressRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dst := make([]byte, 4096)
	for i := 0; i < 2000; i++ {
		garbage := make([]byte, rng.Intn(128))
		rng.Read(garbage)
		Decompress(dst, garbage) // must not panic; error or success both fine
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(bytes.Repeat([]byte("zswap"), 500)); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(4096, 1024); got != 4 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := Ratio(100, 0); got != 0 {
		t.Fatalf("Ratio with zero = %v", got)
	}
}

func TestCompressBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(8192)
		data := make([]byte, n)
		rng.Read(data)
		if got := len(Compress(nil, data)); got > CompressBound(n) {
			t.Fatalf("compressed %d > bound %d for n=%d", got, CompressBound(n), n)
		}
	}
}

func TestSyntheticPageCompressibilityDial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizeAt := func(c float64) int {
		total := 0
		for i := 0; i < 8; i++ {
			p := SyntheticPage(rng, 4096, c)
			if len(p) != 4096 {
				t.Fatalf("page size = %d", len(p))
			}
			total += len(Compress(nil, p))
		}
		return total / 8
	}
	low := sizeAt(0.05)  // barely compressible
	mid := sizeAt(0.5)   // mixed
	high := sizeAt(0.95) // highly compressible
	if !(high < mid && mid < low) {
		t.Fatalf("compressed sizes not monotone in dial: %d %d %d", low, mid, high)
	}
	// And every synthetic page round-trips.
	for _, c := range []float64{-1, 0, 0.3, 0.7, 1, 2} {
		if err := Validate(SyntheticPage(rng, 4096, c)); err != nil {
			t.Fatalf("dial %v: %v", c, err)
		}
	}
}

func BenchmarkCompress4K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	page := SyntheticPage(rng, 4096, 0.6)
	buf := make([]byte, 0, CompressBound(4096))
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Compress(buf[:0], page)
	}
}

func BenchmarkDecompress4K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	page := SyntheticPage(rng, 4096, 0.6)
	comp := Compress(nil, page)
	out := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Decompress(out, comp)
	}
}
