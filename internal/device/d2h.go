package device

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/interconnect"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Result is the accelerator-visible outcome of one memory request.
type Result struct {
	// Done is when the request completes from the accelerator's
	// perspective: data return for reads, global observation for writes.
	Done sim.Time
	// Data holds the 64-byte line for reads (nil in timing-only mode).
	Data []byte
	// HMCHit / DMCHit / LLCHit report where the line was found, for the
	// cross-validation the paper's methodology performs.
	HMCHit, DMCHit, LLCHit bool
}

// D2H issues one 64-byte device-to-host-memory request with the given cache
// hint (§IV-A). addr must be host memory. data carries the line for writes
// (nil allowed for timing-only runs). The request flows LSU → DCOH → HMC,
// escalating over the CXL link to the home agent when the HMC cannot serve
// it, and applies Table III's HMC-side state transitions.
func (d *Device) D2H(req cxl.D2HReq, addr phys.Addr, data []byte, now sim.Time) Result {
	res := d.d2h(req, addr, data, now)
	if d.tracer != nil {
		where := "mem"
		switch {
		case res.HMCHit:
			where = "HMC"
		case res.LLCHit:
			where = "LLC"
		}
		d.emit(trace.D2H, req.String(), phys.LineAddr(addr), now, res.Done, where)
	}
	return res
}

func (d *Device) d2h(req cxl.D2HReq, addr phys.Addr, data []byte, now sim.Time) Result {
	if !d.cfg.Type.HasDeviceCache() {
		panic(fmt.Sprintf("device: D2H requires CXL.cache (Type-1/2); device is %v", d.cfg.Type))
	}
	addr = phys.LineAddr(addr)
	d.stats.D2H++
	issue := d.lsu.Claim(now, d.p.Device.LSUIssueGap)
	t := issue + d.p.Device.LSUIssue + d.p.Device.DCOHLookup

	line := d.hmc.Peek(addr)
	hmcHit := line.Valid()

	switch req {
	case cxl.NCRead:
		// HMC hit: serve locally without any state change (Table III).
		if hmcHit {
			d.stats.HMCHits++
			return Result{Done: t + d.p.Device.HMCRead, Data: d.arena.Clone(line.Data), HMCHit: true}
		}
		return d.d2hReadRemote(req, addr, t, false)

	case cxl.CSRead:
		// HMC hit: serve and leave the line Shared (Table III: S across the
		// hit columns). A Modified line must write its data back to host
		// memory before losing write permission.
		if hmcHit {
			d.stats.HMCHits++
			if line.State == cache.Modified {
				arrive := d.link.Transfer(interconnect.Up, t, cxl.DataBytes)
				d.home.DowngradeToShared(addr, line.Data, arrive)
			}
			line.State = cache.Shared
			return Result{Done: t + d.p.Device.HMCRead, Data: d.arena.Clone(line.Data), HMCHit: true}
		}
		return d.d2hReadRemote(req, addr, t, true)

	case cxl.CORead:
		// HMC hit in M/E serves locally (M/E→M/E); Shared must upgrade via
		// RdOwn (S→E, Table III).
		if hmcHit && (line.State == cache.Modified || line.State == cache.Exclusive) {
			d.stats.HMCHits++
			return Result{Done: t + d.p.Device.HMCRead, Data: d.arena.Clone(line.Data), HMCHit: true}
		}
		return d.d2hReadRemote(req, addr, t, true)

	case cxl.COWrite:
		// HMC hit in M/E: write locally, line becomes Modified.
		if hmcHit && (line.State == cache.Modified || line.State == cache.Exclusive) {
			d.stats.HMCHits++
			line.State = cache.Modified
			if data != nil {
				setLineData(line, data)
			}
			return Result{Done: t + d.p.Device.HMCWrite, HMCHit: true}
		}
		// Acquire ownership from the home agent (one-way + grant cost), then
		// install the line in HMC as Modified.
		arrive := d.link.Transfer(interconnect.Up, t, cxl.HeaderBytes)
		res := d.home.D2H(cxl.COWrite, addr, nil, arrive)
		d.fillHMC(addr, cache.Modified, data, res.Done)
		return Result{Done: res.Done, LLCHit: res.LLCHit, HMCHit: hmcHit}

	case cxl.NCWrite:
		// Invalidate any HMC copy, then WrInv to host memory (one-way,
		// posted at the home agent).
		if hmcHit && d.fault != FaultStaleNCWrite {
			d.hmc.Invalidate(addr)
		}
		arrive := d.link.Transfer(interconnect.Up, t, cxl.DataBytes)
		res := d.home.D2H(cxl.NCWrite, addr, data, arrive)
		return Result{Done: res.Done, LLCHit: res.LLCHit, HMCHit: hmcHit}

	case cxl.NCP:
		// Update HMC, push the line into host LLC (ItoMWr), then invalidate
		// the HMC copy (Table III: HMC Invalid, LLC Modified).
		arrive := d.link.Transfer(interconnect.Up, t, cxl.DataBytes)
		res := d.home.D2H(cxl.NCP, addr, data, arrive)
		d.hmc.Invalidate(addr)
		return Result{Done: res.Done, LLCHit: res.LLCHit, HMCHit: hmcHit}

	default:
		panic(fmt.Sprintf("device: unknown D2H request %v", req))
	}
}

// d2hReadRemote escalates a read miss to the home agent over the link,
// optionally allocating the returned line into HMC.
func (d *Device) d2hReadRemote(req cxl.D2HReq, addr phys.Addr, t sim.Time, allocate bool) Result {
	start := d.d2hCredits.Acquire(t)
	reqBytes, respBytes := cxl.WireBytes(req)
	arrive := d.link.Transfer(interconnect.Up, start, reqBytes)
	res := d.home.D2H(req, addr, nil, arrive)
	done := d.link.Transfer(interconnect.Down, res.Done, respBytes)
	d.d2hCredits.Complete(done)
	if allocate && res.HMCState != cache.Invalid {
		d.fillHMC(addr, res.HMCState, res.Data, done)
		if d.fault == FaultDropDirectory {
			d.home.SnoopDevice(addr) // planted bug: lost snoop-filter update
		}
	}
	return Result{Done: done, Data: res.Data, LLCHit: res.LLCHit}
}

// fillHMC installs a line into HMC, writing a dirty victim back to host
// memory (posted over the link's up direction).
func (d *Device) fillHMC(addr phys.Addr, st cache.State, data []byte, now sim.Time) {
	v, evicted := d.hmc.Fill(addr, st, data)
	if evicted && v.Dirty() {
		d.stats.HMCWritebacks++
		arrive := d.link.Transfer(interconnect.Up, now, cxl.DataBytes)
		d.home.WritebackFromDevice(v.Addr, v.Data, arrive)
	}
}

// ReadHostBlock performs a Fig. 6-style multi-line D2H block read of size
// bytes starting at addr, pipelining line requests through the LSU and
// credits. It returns the completion time of the last line and, when dst is
// non-nil, fills dst with the data read.
func (d *Device) ReadHostBlock(req cxl.D2HReq, addr phys.Addr, size int, dst []byte, now sim.Time) sim.Time {
	if !req.IsRead() {
		panic("device: ReadHostBlock requires a read hint")
	}
	t := now + d.p.Device.LSUTransferSetup
	var last sim.Time
	for off := 0; off < size; off += phys.LineSize {
		r := d.D2H(req, addr+phys.Addr(off), nil, t)
		if dst != nil && r.Data != nil {
			copy(dst[off:min(off+phys.LineSize, len(dst))], r.Data)
		}
		if r.Done > last {
			last = r.Done
		}
	}
	return last
}

// WriteHostBlock performs a multi-line D2H block write of src (or size
// zero-bytes when src is nil) starting at addr with the given write hint.
func (d *Device) WriteHostBlock(req cxl.D2HReq, addr phys.Addr, src []byte, size int, now sim.Time) sim.Time {
	if !req.IsWrite() {
		panic("device: WriteHostBlock requires a write hint")
	}
	t := now + d.p.Device.LSUTransferSetup
	var last sim.Time
	var lineBuf [phys.LineSize]byte
	for off := 0; off < size; off += phys.LineSize {
		var data []byte
		if src != nil {
			n := copy(lineBuf[:], src[off:])
			for i := n; i < phys.LineSize; i++ {
				lineBuf[i] = 0
			}
			data = lineBuf[:]
		}
		r := d.D2H(req, addr+phys.Addr(off), data, t)
		if r.Done > last {
			last = r.Done
		}
	}
	return last
}


func setLineData(l *cache.Line, data []byte) {
	if len(data) != phys.LineSize {
		panic(fmt.Sprintf("device: line data %d bytes", len(data)))
	}
	if l.Data == nil {
		l.Data = make([]byte, phys.LineSize)
	}
	copy(l.Data, data)
}
