package device

import "fmt"

// FaultKind selects a deliberately planted coherence bug, used ONLY by the
// stress/fuzzing harness to prove that the invariant checkers actually
// fire and that failing runs shrink to small reproducers. A production
// configuration never sets a fault; the hooks are two branch checks on
// cold paths and cost nothing when FaultNone.
type FaultKind uint8

// Fault kinds.
const (
	// FaultNone disables injection (the default).
	FaultNone FaultKind = iota
	// FaultDropDirectory makes allocating D2H reads (CO-rd/CS-rd misses)
	// silently drop the home directory's tracking entry after filling HMC —
	// a lost snoop-filter update. check.Coherence's inclusion invariant
	// catches it on the next step.
	FaultDropDirectory
	// FaultStaleNCWrite makes NC-wr skip the HMC invalidation, leaving a
	// stale device copy behind: the inclusion invariant fires (the home
	// untracked the line) and, on a later NC-rd hit, the data oracle
	// catches the stale bytes.
	FaultStaleNCWrite
)

// String names the fault.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDropDirectory:
		return "drop-directory"
	case FaultStaleNCWrite:
		return "stale-nc-write"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// ParseFault resolves a fault name (as printed by String).
func ParseFault(name string) (FaultKind, error) {
	for _, k := range []FaultKind{FaultNone, FaultDropDirectory, FaultStaleNCWrite} {
		if k.String() == name {
			return k, nil
		}
	}
	return FaultNone, fmt.Errorf("device: unknown fault %q", name)
}

// InjectFault plants k into the device's D2H pipeline. Test-only.
func (d *Device) InjectFault(k FaultKind) { d.fault = k }
