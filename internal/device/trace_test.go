package device

import (
	"strings"
	"testing"

	"repro/internal/cxl"
	"repro/internal/trace"
)

func TestDeviceTracing(t *testing.T) {
	d, home := fixture(t, cxl.Type2)
	buf := trace.NewBuffer(16)
	d.SetTracer(buf)
	home.Store().WriteLine(hostAddr, line(1))

	d.D2H(cxl.CSRead, hostAddr, nil, 0)   // miss → mem
	d.D2H(cxl.CSRead, hostAddr, nil, 100) // hit → HMC
	d.D2D(cxl.COWrite, devAddr, line(2), 200)
	d.H2D(cxl.Ld, devAddr, nil, 300)

	evs := buf.Events()
	if len(evs) != 4 {
		t.Fatalf("traced %d events", len(evs))
	}
	if evs[0].Kind != trace.D2H || evs[0].Where != "mem" {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Where != "HMC" {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if evs[2].Kind != trace.D2D || evs[2].Op != "CO-wr" {
		t.Fatalf("event 2 = %+v", evs[2])
	}
	if evs[3].Kind != trace.H2D || evs[3].Latency() <= 0 {
		t.Fatalf("event 3 = %+v", evs[3])
	}

	sums := buf.Summarize()
	table := trace.FormatSummary(sums)
	if !strings.Contains(table, "CS-rd") || !strings.Contains(table, "H2D") {
		t.Fatalf("summary = %q", table)
	}

	// Detach: no further events.
	d.SetTracer(nil)
	d.D2H(cxl.NCRead, hostAddr, nil, 400)
	if buf.Total() != 4 {
		t.Fatal("tracer not detached")
	}
}
