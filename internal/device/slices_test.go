package device

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/cxl"
	"repro/internal/interconnect"
	"repro/internal/mem"
	"repro/internal/timing"
)

func sliceFixture(t testing.TB, n int) (*SliceArray, *coherence.HomeAgent) {
	t.Helper()
	p := timing.Default()
	llc := cache.MustNew("llc", 1<<20, 16)
	store := mem.NewStore("host")
	chs := mem.NewChannels("mc", 8, p.DRAM.WriteQueueEntries, p.DRAM.WriteDrainPerLine)
	home := coherence.NewHomeAgent(p, llc, store, chs)
	link := interconnect.NewLink("cxl", p.CXL.OneWay, p.CXL.BytesPerSec)
	a, err := NewSliceArray(p, DefaultConfig(), home, link, n)
	if err != nil {
		t.Fatal(err)
	}
	return a, home
}

func TestSliceArrayValidation(t *testing.T) {
	p := timing.Default()
	if _, err := NewSliceArray(p, DefaultConfig(), nil, nil, 0); err == nil {
		t.Fatal("zero slices accepted")
	}
}

func TestSliceInterleaving(t *testing.T) {
	a, _ := sliceFixture(t, 4)
	if a.N() != 4 {
		t.Fatalf("N = %d", a.N())
	}
	s0 := a.For(0x0000)
	s1 := a.For(0x0040)
	if s0 == s1 {
		t.Fatal("adjacent lines on the same slice")
	}
	if a.For(0x0000+4*64) != s0 {
		t.Fatal("interleave stride wrong")
	}
	if a.Slice(0) != s0 {
		t.Fatal("Slice(0) should own line 0")
	}
}

func TestSliceArrayRoutesCoherently(t *testing.T) {
	a, home := sliceFixture(t, 2)
	home.Store().WriteLine(0x1000, line(0x77))
	res := a.D2H(cxl.CSRead, 0x1000, nil, 0)
	if res.Data[0] != 0x77 {
		t.Fatal("routed read failed")
	}
	// The line is cached in exactly the owning slice's HMC.
	owner := a.For(0x1000)
	if owner.HMC().Peek(0x1000) == nil {
		t.Fatal("owner slice missing the line")
	}
	for i := 0; i < a.N(); i++ {
		if a.Slice(i) != owner && a.Slice(i).HMC().Peek(0x1000) != nil {
			t.Fatal("non-owner slice cached the line")
		}
	}
	// D2D routes similarly.
	devAddr := mem.RegionDevice.Base + 0x2000
	a.D2D(cxl.COWrite, devAddr, line(0x31), 0)
	got := a.D2D(cxl.CSRead, devAddr, nil, 0)
	if got.Data[0] != 0x31 {
		t.Fatal("D2D route failed")
	}
}

// TestSliceBandwidthScaling reproduces the §V-A projection: one 400 MHz
// LSU caps at 25.6 GB/s; adding slices scales D2H read bandwidth until the
// shared CXL link binds (~90 % of its payload rate given header overhead).
func TestSliceBandwidthScaling(t *testing.T) {
	const lines = 4096 // 256 KB: deep enough for steady state
	bw := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		a, _ := sliceFixture(t, n)
		bw[n] = a.ReadHostBandwidth(cxl.NCRead, 0x100000, lines, 0)
	}
	if bw[1] > 26 {
		t.Fatalf("single slice = %.1f GB/s, LSU cap is 25.6", bw[1])
	}
	if bw[2] < bw[1]*1.6 {
		t.Fatalf("2 slices = %.1f GB/s, want ~2x of %.1f", bw[2], bw[1])
	}
	if bw[4] < bw[2] {
		t.Fatalf("4 slices (%.1f) should not regress vs 2 (%.1f)", bw[4], bw[2])
	}
	// The link (64 GB/s raw; 64B data per 80B flit ⇒ ~51 GB/s payload)
	// bounds the aggregate.
	if bw[4] > 55 {
		t.Fatalf("4 slices = %.1f GB/s exceeds the link payload bound", bw[4])
	}
	t.Logf("D2H NC-rd bandwidth: 1 slice %.1f, 2 slices %.1f, 4 slices %.1f GB/s", bw[1], bw[2], bw[4])
}
