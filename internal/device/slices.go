package device

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/cxl"
	"repro/internal/interconnect"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

// SliceArray aggregates multiple DCOH slices. §IV describes the device as
// "one or more instances" of {MC, DCOH, CAFU}; a single 400 MHz FPGA LSU
// caps D2H bandwidth at 25.6 GB/s (§V-A), and the paper projects that more
// (or faster) LSUs push bandwidth toward ~90 % of the interconnect limit.
// A SliceArray stripes accelerator traffic across N slices that share the
// CXL link and the host home agent, letting that projection be measured.
//
// Lines are statically interleaved across slices, so each line address is
// owned by exactly one slice's HMC/DMC and the single-writer invariants
// hold without cross-slice snooping.
type SliceArray struct {
	slices []*Device
}

// NewSliceArray builds n slices over the same home agent and link.
func NewSliceArray(p *timing.Params, cfg Config, home *coherence.HomeAgent, link *interconnect.Link, n int) (*SliceArray, error) {
	if n <= 0 {
		return nil, fmt.Errorf("device: slice count %d", n)
	}
	a := &SliceArray{slices: make([]*Device, n)}
	for i := range a.slices {
		d, err := New(p, cfg, home, link)
		if err != nil {
			return nil, err
		}
		a.slices[i] = d
	}
	return a, nil
}

// N reports the slice count.
func (a *SliceArray) N() int { return len(a.slices) }

// Slice returns slice i.
func (a *SliceArray) Slice(i int) *Device { return a.slices[i] }

// For returns the slice owning addr (line interleaving).
func (a *SliceArray) For(addr phys.Addr) *Device {
	return a.slices[int(phys.LineAddr(addr)/phys.LineSize)%len(a.slices)]
}

// D2H routes a request to the owning slice.
func (a *SliceArray) D2H(req cxl.D2HReq, addr phys.Addr, data []byte, now sim.Time) Result {
	return a.For(addr).D2H(req, addr, data, now)
}

// D2D routes a request to the owning slice.
func (a *SliceArray) D2D(req cxl.D2HReq, addr phys.Addr, data []byte, now sim.Time) Result {
	return a.For(addr).D2D(req, addr, data, now)
}

// ReadHostBandwidth measures the aggregate D2H read bandwidth of the array
// over n consecutive lines starting at base (GB/s): every slice's LSU
// issues its share concurrently, contending only on the shared link — the
// §V-A scaling experiment.
func (a *SliceArray) ReadHostBandwidth(req cxl.D2HReq, base phys.Addr, n int, now sim.Time) float64 {
	var last sim.Time
	for i := 0; i < n; i++ {
		res := a.D2H(req, base+phys.Addr(i*phys.LineSize), nil, now)
		if res.Done > last {
			last = res.Done
		}
	}
	if last <= now {
		return 0
	}
	return float64(n*phys.LineSize) / (last - now).Seconds() / 1e9
}

// ResetTiming returns every slice to idle.
func (a *SliceArray) ResetTiming() {
	for _, d := range a.slices {
		d.ResetTiming()
	}
}
