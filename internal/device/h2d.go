package device

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// H2DResult reports the device-side handling of a host CXL.mem request.
type H2DResult struct {
	// Done is when device memory has served the request.
	Done sim.Time
	// Data is the 64-byte line for reads.
	Data []byte
	// DMCHit reports whether the DMC held the line (Type-2 only).
	DMCHit bool
	// DMCState is the DMC line state found before the access.
	DMCState cache.State
	// HostState is the coherence state the host may install for the line:
	// Shared when the DMC retains a shared copy, Exclusive otherwise. A
	// host store to a Shared line must upgrade ownership through the
	// device first (see UpgradeHostOwnership).
	HostState cache.State
	// BiasFlipped reports whether the access flipped a device-bias region
	// back to host bias (§IV-B).
	BiasFlipped bool
}

// H2D serves a host CXL.mem request arriving at the device at time arrive.
// addr must be device memory; data carries the payload for writes.
//
// On a Type-2 device the DCOH must first check (and possibly clean) the DMC
// state, but it never serves H2D data from DMC — only the device
// accelerator may read DMC (§IV, §V-C). A Type-3 device goes straight to
// device memory, which is why its H2D accesses are slightly faster.
func (d *Device) H2D(op cxl.HostOp, addr phys.Addr, data []byte, arrive sim.Time) H2DResult {
	res := d.h2d(op, addr, data, arrive)
	if d.tracer != nil {
		where := "mem"
		if res.DMCHit {
			where = "DMC+mem"
		}
		d.emit(trace.H2D, op.String(), phys.LineAddr(addr), arrive, res.Done, where)
	}
	return res
}

func (d *Device) h2d(op cxl.HostOp, addr phys.Addr, data []byte, arrive sim.Time) H2DResult {
	if !d.cfg.Type.HasDeviceMemory() {
		panic(fmt.Sprintf("device: H2D requires CXL.mem (Type-2/3); device is %v", d.cfg.Type))
	}
	addr = phys.LineAddr(addr)
	d.stats.H2D++
	t := arrive
	res := H2DResult{HostState: cache.Exclusive}

	if d.cfg.Type == cxl.Type2 {
		// Automatic bias flip on H2D to a device-bias region.
		if d.flipToHostBias(addr) {
			t += d.p.CXL.BiasFlipH2D
			res.BiasFlipped = true
		}
		// DMC coherence check (the Type-2 penalty of §V-C). Posted writes
		// overlap most of the check with write-queue admission, exposing
		// only the tag-lookup stage; reads pay it in full.
		check := d.p.Device.DMCCheckH2D
		transition := d.p.Device.OwnedTransition
		if op == cxl.NtSt {
			check /= 4
			transition /= 2
		}
		t += check
		if line := d.dmc.Peek(addr); line.Valid() {
			res.DMCHit = true
			res.DMCState = line.State
			d.stats.DMCHits++
			switch line.State {
			case cache.Modified:
				// Write back to device memory, then serve from memory.
				t += d.p.Device.ModifiedWriteback
				if line.Data != nil {
					d.mem.WriteLine(addr, line.Data)
				}
				if op.IsWrite() {
					d.dmc.Invalidate(addr)
				} else {
					line.State = cache.Shared
				}
			case cache.Owned, cache.Exclusive:
				// Downgrade so the host copy is legal.
				t += transition
				if op.IsWrite() {
					d.dmc.Invalidate(addr)
				} else {
					line.State = cache.Shared
				}
			case cache.Shared:
				// Negligible: the state is already compatible with a host
				// copy (§V-C: shared hits cost about the same as misses).
				if op.IsWrite() {
					d.dmc.Invalidate(addr)
				}
			}
			// When the DMC retains a shared copy after a read, the host may
			// only install the line Shared; an exclusive host copy next to
			// a live DMC line would let silent host upgrades break
			// coherence.
			if !op.IsWrite() {
				if l := d.dmc.Peek(addr); l.Valid() {
					res.HostState = cache.Shared
				}
			}
		}
	}

	// Device-memory service (H2D is never served from DMC).
	t += d.p.Device.DevMemCtrl
	// A temporal store (st) is a read-for-ownership: the host fetches the
	// line into its hierarchy and modifies it there, so the device side
	// behaves like a read. Only nt-st writes through immediately.
	if op == cxl.NtSt {
		if data != nil {
			d.mem.WriteLine(addr, data)
		}
		admitted := d.chs.PostWrite(addr, t)
		d.stats.DevWrites++
		res.Done = admitted
		return res
	}
	d.stats.DevMemReads++
	buf := d.arena.Line()
	d.mem.ReadLine(addr, buf)
	res.Done = t + d.p.DRAM.DDR4Read
	res.Data = buf
	return res
}

// WriteDevMemDirect functionally stores bytes into device memory without
// timing (experiment setup and host LLC writebacks of device lines).
func (d *Device) WriteDevMemDirect(addr phys.Addr, data []byte) {
	d.mem.Write(addr, data)
}

// ReadDevMemDirect functionally reads bytes from device memory without
// timing.
func (d *Device) ReadDevMemDirect(addr phys.Addr, dst []byte) {
	d.mem.Read(addr, dst)
}

// UpgradeHostOwnership grants the host exclusive ownership of a
// device-memory line: the DCOH invalidates any DMC copy (an S→M upgrade
// of the host's cached copy must be globally observed). It returns the
// device-side processing cost.
func (d *Device) UpgradeHostOwnership(addr phys.Addr) sim.Time {
	if d.dmc != nil {
		d.dmc.Invalidate(phys.LineAddr(addr))
	}
	return d.p.Device.DMCCheckH2D
}

// RecallHMC back-invalidates the device's HMC copy of a host-memory line
// (the host home agent snooping the device on a conflicting host access).
// It returns the state and data the device held.
func (d *Device) RecallHMC(addr phys.Addr) (cache.State, []byte, bool) {
	if d.hmc == nil {
		return cache.Invalid, nil, false
	}
	return d.hmc.Invalidate(phys.LineAddr(addr))
}

// SetDMCState force-installs a DMC line in a given state, for the
// cross-validation experiments of §V-C (owned vs shared vs modified hits).
// Prefer priming states with real D2D requests where possible.
func (d *Device) SetDMCState(addr phys.Addr, st cache.State, data []byte) {
	if d.dmc == nil {
		panic("device: SetDMCState on a device without DMC")
	}
	if st == cache.Invalid {
		d.dmc.Invalidate(addr)
		return
	}
	d.dmc.Fill(phys.LineAddr(addr), st, data)
}
