// Package device models the CXL device of the paper: an Agilex-7-class
// card that can be personalized as a CXL Type-2 device (DCOH slice with
// host-memory cache and device-memory cache, CXL.cache + CXL.mem), a CXL
// Type-3 device (no device cache), or a plain PCIe device.
//
// The Type-2 personality implements the architecture of §IV: the DCOH
// serves D2H requests (against HMC, host LLC or host memory), D2D requests
// (against DMC and device memory, in host- or device-bias mode) and H2D
// requests (always from device memory, never from DMC), with the cache
// hints NC-P / NC / CO / CS carrying Table III's coherence semantics.
package device

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/cxl"
	"repro/internal/interconnect"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/trace"
)

// BiasMode selects how a device-memory region manages host-device coherence
// (§IV-B).
type BiasMode uint8

// Bias modes.
const (
	// HostBias routes coherence through hardware: the DCOH consults the host
	// before serving D2D requests that could conflict with host caches.
	HostBias BiasMode = iota
	// DeviceBias skips the host check, giving the accelerator the fastest
	// path to device memory; software owns coherence.
	DeviceBias
)

// String names the mode.
func (m BiasMode) String() string {
	if m == DeviceBias {
		return "device-bias"
	}
	return "host-bias"
}

// Config selects a device personality.
type Config struct {
	// Type is the CXL device type: Type2 enables the full DCOH (HMC + DMC
	// + device memory), Type3 disables CXL.cache (no device caches), and
	// Type1 (the SNIC class of Table I) keeps the coherent HMC but has no
	// host-visible device memory — D2D and H2D are rejected.
	Type cxl.DeviceType
	// HMCBytes/HMCWays and DMCBytes/DMCWays shape the device caches.
	// Defaults mirror the paper: 4-way 128 KB HMC, direct-mapped 32 KB DMC
	// per DCOH slice.
	HMCBytes, HMCWays int
	DMCBytes, DMCWays int
	// DevMemChannels is the number of device DRAM channels (2× DDR4-2400).
	DevMemChannels int
}

// DefaultConfig returns the paper's Type-2 device configuration.
func DefaultConfig() Config {
	return Config{
		Type:           cxl.Type2,
		HMCBytes:       128 << 10,
		HMCWays:        4,
		DMCBytes:       32 << 10,
		DMCWays:        1,
		DevMemChannels: 2,
	}
}

// Device is the CXL endpoint: DCOH caches, device memory and the LSU that
// device accelerators use to issue memory requests.
type Device struct {
	p    *timing.Params
	cfg  Config
	hmc  *cache.Cache // nil on Type-3
	dmc  *cache.Cache // nil on Type-3
	mem  *mem.Store
	chs  *mem.Channels
	home *coherence.HomeAgent
	link *interconnect.Link

	lsu        *sim.Resource // serializes accelerator request issue
	d2hCredits *sim.Credits
	d2dCredits *sim.Credits

	// biasOverrides lists device-memory sub-ranges in device-bias mode;
	// everything else defaults to host-bias.
	biasOverrides []phys.Range

	tracer trace.Tracer
	stats  Stats

	// arena backs the line buffers the D2H/D2D/H2D paths hand to
	// callers. Returned data stays valid until the next ResetTiming
	// (bump allocation, no reuse in between).
	arena phys.LineArena

	// fault is the planted bug used by the fuzzing harness to validate
	// that the invariant checkers fire (see fault.go). FaultNone in any
	// real configuration.
	fault FaultKind
}

// Stats counts device-side events.
type Stats struct {
	D2H, D2D, H2D          uint64
	HMCHits, DMCHits       uint64
	BiasFlips              uint64
	HMCWritebacks          uint64
	DevMemReads, DevWrites uint64
}

// New builds a device attached to home over link. home and link must be
// non-nil; the same home agent serves the host cores.
func New(p *timing.Params, cfg Config, home *coherence.HomeAgent, link *interconnect.Link) (*Device, error) {
	if home == nil || link == nil {
		return nil, fmt.Errorf("device: home and link are required")
	}
	if cfg.Type != cxl.Type1 && cfg.Type != cxl.Type2 && cfg.Type != cxl.Type3 {
		return nil, fmt.Errorf("device: unsupported CXL personality %v", cfg.Type)
	}
	d := &Device{
		p:          p,
		cfg:        cfg,
		mem:        mem.NewStore("devmem"),
		home:       home,
		link:       link,
		lsu:        sim.NewResource("lsu"),
		d2hCredits: sim.NewCredits("d2h", p.CXL.D2HReadCredits),
		d2dCredits: sim.NewCredits("d2d", p.Device.D2DReadCredits),
	}
	d.chs = mem.NewChannels("devmc", cfg.DevMemChannels, p.DRAM.WriteQueueEntries, p.DRAM.DDR4WriteDrainPerLine)
	if cfg.Type.HasDeviceCache() {
		var err error
		if d.hmc, err = cache.New("hmc", cfg.HMCBytes, cfg.HMCWays); err != nil {
			return nil, err
		}
		if cfg.Type.HasDeviceMemory() {
			if d.dmc, err = cache.New("dmc", cfg.DMCBytes, cfg.DMCWays); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(p *timing.Params, cfg Config, home *coherence.HomeAgent, link *interconnect.Link) *Device {
	d, err := New(p, cfg, home, link)
	if err != nil {
		panic(err)
	}
	return d
}

// Type returns the device personality.
func (d *Device) Type() cxl.DeviceType { return d.cfg.Type }

// HMC exposes the host-memory cache (nil on Type-3) for state
// cross-validation, mirroring the paper's methodology.
func (d *Device) HMC() *cache.Cache { return d.hmc }

// DMC exposes the device-memory cache (nil on Type-3).
func (d *Device) DMC() *cache.Cache { return d.dmc }

// Mem exposes the functional device-memory store.
func (d *Device) Mem() *mem.Store { return d.mem }

// Link exposes the CXL link.
func (d *Device) Link() *interconnect.Link { return d.link }

// Home exposes the host home agent the device is attached to.
func (d *Device) Home() *coherence.HomeAgent { return d.home }

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// SetTracer installs a transaction tracer (nil disables tracing). Every
// D2H/D2D/H2D request emits one trace.Event.
func (d *Device) SetTracer(t trace.Tracer) { d.tracer = t }

// emit records a trace event if tracing is enabled.
func (d *Device) emit(kind trace.Kind, op string, addr phys.Addr, start, done sim.Time, where string) {
	if d.tracer == nil {
		return
	}
	d.tracer.Record(trace.Event{Start: start, Done: done, Kind: kind, Op: op, Addr: addr, Where: where})
}

// ResetTiming returns all timing resources to idle (between experiment
// repetitions) without touching cache or memory contents.
func (d *Device) ResetTiming() {
	d.lsu.Reset()
	d.d2hCredits.Reset()
	d.d2dCredits.Reset()
	d.chs.Reset()
	d.link.Reset()
	// Line buffers handed out before the reset are out of contract now.
	d.arena.Reset()
}

// ---------- bias management (§IV-B) ----------

// BiasOf reports the bias mode governing addr.
func (d *Device) BiasOf(addr phys.Addr) BiasMode {
	for _, r := range d.biasOverrides {
		if r.Contains(addr) {
			return DeviceBias
		}
	}
	return HostBias
}

// EnterDeviceBias switches a device-memory region into device-bias mode.
// Per §IV-B the host software must first flush its cached copies of the
// region; this helper performs that flush against the home LLC and returns
// the completion time including the per-line flush cost.
func (d *Device) EnterDeviceBias(r phys.Range, now sim.Time) sim.Time {
	flushed := d.home.LLC().FlushRange(r, func(v cache.Victim) {
		if v.Data != nil {
			d.mem.WriteLine(v.Addr, v.Data)
		}
	})
	for _, o := range d.biasOverrides {
		if o == r {
			return now + sim.Time(flushed)*d.p.Host.CLFlush
		}
	}
	d.biasOverrides = append(d.biasOverrides, r)
	return now + sim.Time(flushed)*d.p.Host.CLFlush
}

// ExitDeviceBias returns a region to host-bias mode.
func (d *Device) ExitDeviceBias(r phys.Range) {
	for i, o := range d.biasOverrides {
		if o == r {
			d.biasOverrides = append(d.biasOverrides[:i], d.biasOverrides[i+1:]...)
			return
		}
	}
}

// flipToHostBias implements the automatic device→host bias flip on an H2D
// access to a device-bias region (§IV-B).
func (d *Device) flipToHostBias(addr phys.Addr) bool {
	for i, r := range d.biasOverrides {
		if r.Contains(addr) {
			d.biasOverrides = append(d.biasOverrides[:i], d.biasOverrides[i+1:]...)
			d.stats.BiasFlips++
			return true
		}
	}
	return false
}
