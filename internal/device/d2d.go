package device

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// D2D issues one 64-byte device-to-device-memory request (§IV-B). addr must
// be device memory. The request consults DMC first, then device memory; in
// host-bias mode the DCOH additionally checks whether the host holds the
// line before serving requests that could observe or break coherence, which
// is the latency/bandwidth penalty Fig. 4 quantifies.
func (d *Device) D2D(req cxl.D2HReq, addr phys.Addr, data []byte, now sim.Time) Result {
	res := d.d2d(req, addr, data, now, true)
	if d.tracer != nil {
		where := "mem"
		if res.DMCHit {
			where = "DMC"
		}
		d.emit(trace.D2D, req.String(), phys.LineAddr(addr), now, res.Done, where)
	}
	return res
}

// d2d is the D2D datapath. wantData selects timing-only mode for reads:
// when false, the caller has no use for the line bytes (a nil-dst block
// read), so the hit path skips the defensive clone and the non-allocating
// NC-read miss path skips the line buffer and backing-store lookup
// entirely. Timing and cache/memory state transitions are identical in
// both modes — NC reads never install DMC lines, and the cacheable-read
// fill still reads real bytes — so a timing-only read is observationally
// equivalent to a full one minus Result.Data.
func (d *Device) d2d(req cxl.D2HReq, addr phys.Addr, data []byte, now sim.Time, wantData bool) Result {
	d.checkD2D(req)
	if req.IsRead() {
		return d.d2dRead(req, addr, now, wantData)
	}
	addr = phys.LineAddr(addr)
	d.stats.D2D++
	hostBias := d.BiasOf(addr) == HostBias

	gap := d.p.Device.LSUIssueGap
	if hostBias {
		gap = d.p.Device.HostBiasWriteGap
	}
	issue := d.lsu.Claim(now, gap)
	t := issue + d.p.Device.LSUIssue + d.p.Device.DCOHLookup

	line := d.dmc.Peek(addr)
	dmcHit := line.Valid()

	if hostBias {
		// Host-bias coherence check (§IV-B): writes always consult the host
		// and recall/invalidate its copy.
		t += d.p.CXL.BiasCheck
		d.recallHostLine(addr, line, dmcHit)
	}

	switch {
	case req == cxl.COWrite:
		// Cacheable write: install in DMC as Modified.
		d.stats.DevWrites++
		if dmcHit {
			d.stats.DMCHits++
			line.State = cache.Modified
			if data != nil {
				setLineData(line, data)
			}
			return Result{Done: t + d.p.Device.DMCWrite, DMCHit: true}
		}
		d.fillDMC(addr, cache.Modified, data, t)
		return Result{Done: t + d.p.Device.DMCWrite}

	case req == cxl.NCWrite:
		// Non-cacheable write: invalidate DMC copy, post to device memory.
		d.stats.DevWrites++
		if dmcHit {
			d.dmc.Invalidate(addr)
		}
		if data != nil {
			d.mem.WriteLine(addr, data)
		}
		admitted := d.chs.PostWrite(addr, t+d.p.Device.DevMemCtrl)
		return Result{Done: admitted, DMCHit: dmcHit}

	default:
		panic(fmt.Sprintf("device: unsupported D2D request %v", req))
	}
}

// checkD2D validates that the device can serve D2D requests at all; block
// transfers hoist it out of their per-line loop.
func (d *Device) checkD2D(req cxl.D2HReq) {
	if !d.cfg.Type.HasDeviceMemory() || !d.cfg.Type.HasDeviceCache() {
		panic(fmt.Sprintf("device: D2D with cache hints requires Type-2; device is %v", d.cfg.Type))
	}
	if req == cxl.NCP {
		panic("device: NC-P targets host LLC and is not defined for D2D")
	}
}

// recallHostLine is the functional side of the host-bias coherence check:
// drop any host LLC copy so the device observes/owns the latest data.
func (d *Device) recallHostLine(addr phys.Addr, line *cache.Line, dmcHit bool) {
	if st, data, ok := d.home.LLC().Invalidate(addr); ok && (st == cache.Modified) && data != nil {
		// The host had newer data: it is transferred into DMC/devmem.
		d.mem.WriteLine(addr, data)
		if dmcHit {
			setLineData(line, data)
		}
	}
}

// d2dRead is the read half of the D2D datapath, split out so block reads
// dispatch straight into it per line with validation hoisted. Timing and
// state transitions are identical to routing through d2d.
func (d *Device) d2dRead(req cxl.D2HReq, addr phys.Addr, now sim.Time, wantData bool) Result {
	addr = phys.LineAddr(addr)
	d.stats.D2D++
	hostBias := d.BiasOf(addr) == HostBias

	issue := d.lsu.Claim(now, d.p.Device.LSUIssueGap)
	t := issue + d.p.Device.LSUIssue + d.p.Device.DCOHLookup

	line := d.dmc.Peek(addr)
	dmcHit := line.Valid()

	// Host-bias coherence check (§IV-B): reads of a Shared DMC line eschew
	// the check (the host can hold at most another shared copy); everything
	// else consults the host and recalls/invalidates its copy.
	if hostBias && !(dmcHit && line.State == cache.Shared) {
		t += d.p.CXL.BiasCheck
		d.recallHostLine(addr, line, dmcHit)
	}

	if dmcHit {
		d.stats.DMCHits++
		if req == cxl.CSRead && hostBias && line.State != cache.Shared {
			// Losing write permission: a Modified line's data must land
			// in device memory before the downgrade.
			if line.State == cache.Modified && line.Data != nil {
				d.mem.WriteLine(addr, line.Data)
				d.chs.PostWrite(addr, t)
			}
			line.State = cache.Shared
		}
		res := Result{Done: t + d.p.Device.DMCRead, DMCHit: true}
		if wantData {
			res.Data = d.arena.Clone(line.Data)
		}
		return res
	}
	// Miss: device memory access, allocating for cacheable reads.
	start := d.d2dCredits.Acquire(t)
	done := start + d.p.Device.DevMemCtrl + d.p.DRAM.DDR4Read
	d.d2dCredits.Complete(done)
	d.stats.DevMemReads++
	if !wantData && req == cxl.NCRead {
		// Timing-only NC read: no DMC fill and no caller for the bytes,
		// so device memory is not consulted functionally at all.
		return Result{Done: done}
	}
	buf := d.arena.Line()
	d.mem.ReadLine(addr, buf)
	if req == cxl.CSRead || req == cxl.CORead {
		st := cache.Exclusive // device-bias: no coherence state semantics
		if hostBias && req == cxl.CSRead {
			st = cache.Shared
		}
		d.fillDMC(addr, st, buf, done)
	}
	if !wantData {
		return Result{Done: done}
	}
	return Result{Done: done, Data: buf}
}

// fillDMC installs a line into the direct-mapped DMC, writing a dirty
// victim back to device memory.
func (d *Device) fillDMC(addr phys.Addr, st cache.State, data []byte, now sim.Time) {
	v, evicted := d.dmc.Fill(addr, st, data)
	if evicted && v.Dirty() {
		if v.Data != nil {
			d.mem.WriteLine(v.Addr, v.Data)
		}
		d.chs.PostWrite(v.Addr, now)
	}
}

// ReadDevBlock performs a multi-line D2D block read (e.g. pulling a
// compressed page out of the zpool, §VI-A step 2 of decompression). A nil
// dst selects timing-only mode: per-line latencies and all cache/memory
// state transitions are identical, but no line buffers are materialized —
// the fast path that keeps high-volume consumers (the LLM-serving KV
// streams) allocation-free.
func (d *Device) ReadDevBlock(req cxl.D2HReq, addr phys.Addr, size int, dst []byte, now sim.Time) sim.Time {
	if !req.IsRead() {
		panic("device: ReadDevBlock requires a read hint")
	}
	d.checkD2D(req)
	t := now + d.p.Device.LSUTransferSetup
	var last sim.Time
	wantData := dst != nil
	if !wantData && req == cxl.NCRead && d.tracer == nil {
		return d.readDevBlockBatched(addr, size, t)
	}
	for off := 0; off < size; off += phys.LineSize {
		la := addr + phys.Addr(off)
		r := d.d2dRead(req, la, t, wantData)
		if d.tracer != nil {
			where := "mem"
			if r.DMCHit {
				where = "DMC"
			}
			d.emit(trace.D2D, req.String(), phys.LineAddr(la), t, r.Done, where)
		}
		if wantData && r.Data != nil {
			copy(dst[off:min(off+phys.LineSize, len(dst))], r.Data)
		}
		if r.Done > last {
			last = r.Done
		}
	}
	return last
}

// readDevBlockBatched is the timing-only NC block read with per-line work
// collapsed into run-batched resource claims. A run of consecutive lines
// that are device-bias and DMC-absent all take the identical miss path —
// LSU issue claim, then a device-memory access through the d2d credit pool
// — so the run is admitted with one ClaimN and one credit Pipeline, both
// exactly equivalent to the per-line sequence (and the per-line state reads
// stay valid across the run: an NC read never installs or upgrades DMC
// lines, so a miss scan computed ahead of the run cannot be invalidated by
// the run itself). Lines that are host-bias or DMC-resident fall back to
// the general per-line path. The fused loop removes two calls and a 40-byte
// result copy per line, which dominated block-read cost for the KV streams.
func (d *Device) readDevBlockBatched(addr phys.Addr, size int, t sim.Time) sim.Time {
	var (
		last    sim.Time
		gap     = d.p.Device.LSUIssueGap
		lineLat = d.p.Device.LSUIssue + d.p.Device.DCOHLookup
		svc     = d.p.Device.DevMemCtrl + d.p.DRAM.DDR4Read
	)
	for off := 0; off < size; {
		la := phys.LineAddr(addr + phys.Addr(off))
		maxLines := (size - off + phys.LineSize - 1) / phys.LineSize
		n := d.deviceBiasRun(la, maxLines)
		if n > 0 {
			n = d.dmc.MissRun(la, n)
		}
		if n == 0 {
			// Host-bias or DMC-resident line: general per-line path.
			r := d.d2dRead(cxl.NCRead, la, t, false)
			if r.Done > last {
				last = r.Done
			}
			off += phys.LineSize
			continue
		}
		d.stats.D2D += uint64(n)
		d.stats.DevMemReads += uint64(n)
		issue := d.lsu.ClaimN(t, gap, n)
		// Completion times are nondecreasing along the run, so the final
		// pipeline completion is the run's maximum.
		done := d.d2dCredits.Pipeline(issue+lineLat, gap, svc, n)
		if done > last {
			last = done
		}
		off += n * phys.LineSize
	}
	return last
}

// deviceBiasRun reports how many consecutive lines, starting at line-aligned
// la, are governed by device bias — up to max. A run may end at an
// override's boundary without the device-bias region ending (adjacent
// overrides); callers re-enter for the remainder and lose only batching,
// not correctness.
func (d *Device) deviceBiasRun(la phys.Addr, max int) int {
	for _, r := range d.biasOverrides {
		if r.Contains(la) {
			n := int((uint64(r.End()-la) + phys.LineSize - 1) / phys.LineSize)
			if n > max {
				n = max
			}
			return n
		}
	}
	return 0
}

// WriteDevBlock performs a multi-line D2D block write (e.g. storing a
// compressed page into a device-memory zpool with NC-write, §VI-A step 5).
func (d *Device) WriteDevBlock(req cxl.D2HReq, addr phys.Addr, src []byte, size int, now sim.Time) sim.Time {
	if !req.IsWrite() {
		panic("device: WriteDevBlock requires a write hint")
	}
	t := now + d.p.Device.LSUTransferSetup
	var last sim.Time
	var lineBuf [phys.LineSize]byte
	for off := 0; off < size; off += phys.LineSize {
		var data []byte
		if src != nil {
			n := copy(lineBuf[:], src[off:])
			for i := n; i < phys.LineSize; i++ {
				lineBuf[i] = 0
			}
			data = lineBuf[:]
		}
		r := d.D2D(req, addr+phys.Addr(off), data, t)
		if r.Done > last {
			last = r.Done
		}
	}
	return last
}
