package device

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// D2D issues one 64-byte device-to-device-memory request (§IV-B). addr must
// be device memory. The request consults DMC first, then device memory; in
// host-bias mode the DCOH additionally checks whether the host holds the
// line before serving requests that could observe or break coherence, which
// is the latency/bandwidth penalty Fig. 4 quantifies.
func (d *Device) D2D(req cxl.D2HReq, addr phys.Addr, data []byte, now sim.Time) Result {
	res := d.d2d(req, addr, data, now)
	if d.tracer != nil {
		where := "mem"
		if res.DMCHit {
			where = "DMC"
		}
		d.emit(trace.D2D, req.String(), phys.LineAddr(addr), now, res.Done, where)
	}
	return res
}

func (d *Device) d2d(req cxl.D2HReq, addr phys.Addr, data []byte, now sim.Time) Result {
	if !d.cfg.Type.HasDeviceMemory() || !d.cfg.Type.HasDeviceCache() {
		panic(fmt.Sprintf("device: D2D with cache hints requires Type-2; device is %v", d.cfg.Type))
	}
	if req == cxl.NCP {
		panic("device: NC-P targets host LLC and is not defined for D2D")
	}
	addr = phys.LineAddr(addr)
	d.stats.D2D++
	hostBias := d.BiasOf(addr) == HostBias

	gap := d.p.Device.LSUIssueGap
	if hostBias && req.IsWrite() {
		gap = d.p.Device.HostBiasWriteGap
	}
	issue := d.lsu.Claim(now, gap)
	t := issue + d.p.Device.LSUIssue + d.p.Device.DCOHLookup

	line := d.dmc.Peek(addr)
	dmcHit := line.Valid()

	// Host-bias coherence check (§IV-B): reads of a Shared DMC line eschew
	// the check (the host can hold at most another shared copy); everything
	// else consults the host and recalls/invalidates its copy.
	needCheck := hostBias && !(req.IsRead() && dmcHit && line.State == cache.Shared)
	if needCheck {
		t += d.p.CXL.BiasCheck
		// Functional side of the check: drop any host LLC copy so the
		// device observes/owns the latest data.
		if st, data_, ok := d.home.LLC().Invalidate(addr); ok && (st == cache.Modified) && data_ != nil {
			// The host had newer data: it is transferred into DMC/devmem.
			d.mem.WriteLine(addr, data_)
			if dmcHit {
				setLineData(line, data_)
			}
		}
	}

	switch {
	case req.IsRead():
		if dmcHit {
			d.stats.DMCHits++
			if req == cxl.CSRead && hostBias && line.State != cache.Shared {
				// Losing write permission: a Modified line's data must land
				// in device memory before the downgrade.
				if line.State == cache.Modified && line.Data != nil {
					d.mem.WriteLine(addr, line.Data)
					d.chs.PostWrite(addr, t)
				}
				line.State = cache.Shared
			}
			return Result{Done: t + d.p.Device.DMCRead, Data: cloneLine(line.Data), DMCHit: true}
		}
		// Miss: device memory access, allocating for cacheable reads.
		start := d.d2dCredits.Acquire(t)
		done := start + d.p.Device.DevMemCtrl + d.p.DRAM.DDR4Read
		d.d2dCredits.Complete(done)
		d.stats.DevMemReads++
		buf := make([]byte, phys.LineSize)
		d.mem.ReadLine(addr, buf)
		if req == cxl.CSRead || req == cxl.CORead {
			st := cache.Exclusive // device-bias: no coherence state semantics
			if hostBias {
				if req == cxl.CSRead {
					st = cache.Shared
				}
			}
			d.fillDMC(addr, st, buf, done)
		}
		return Result{Done: done, Data: buf}

	case req == cxl.COWrite:
		// Cacheable write: install in DMC as Modified.
		d.stats.DevWrites++
		if dmcHit {
			d.stats.DMCHits++
			line.State = cache.Modified
			if data != nil {
				setLineData(line, data)
			}
			return Result{Done: t + d.p.Device.DMCWrite, DMCHit: true}
		}
		d.fillDMC(addr, cache.Modified, data, t)
		return Result{Done: t + d.p.Device.DMCWrite}

	case req == cxl.NCWrite:
		// Non-cacheable write: invalidate DMC copy, post to device memory.
		d.stats.DevWrites++
		if dmcHit {
			d.dmc.Invalidate(addr)
		}
		if data != nil {
			d.mem.WriteLine(addr, data)
		}
		admitted := d.chs.PostWrite(addr, t+d.p.Device.DevMemCtrl)
		return Result{Done: admitted, DMCHit: dmcHit}

	default:
		panic(fmt.Sprintf("device: unsupported D2D request %v", req))
	}
}

// fillDMC installs a line into the direct-mapped DMC, writing a dirty
// victim back to device memory.
func (d *Device) fillDMC(addr phys.Addr, st cache.State, data []byte, now sim.Time) {
	v, evicted := d.dmc.Fill(addr, st, data)
	if evicted && v.Dirty() {
		if v.Data != nil {
			d.mem.WriteLine(v.Addr, v.Data)
		}
		d.chs.PostWrite(v.Addr, now)
	}
}

// ReadDevBlock performs a multi-line D2D block read (e.g. pulling a
// compressed page out of the zpool, §VI-A step 2 of decompression).
func (d *Device) ReadDevBlock(req cxl.D2HReq, addr phys.Addr, size int, dst []byte, now sim.Time) sim.Time {
	if !req.IsRead() {
		panic("device: ReadDevBlock requires a read hint")
	}
	t := now + d.p.Device.LSUTransferSetup
	var last sim.Time
	for off := 0; off < size; off += phys.LineSize {
		r := d.D2D(req, addr+phys.Addr(off), nil, t)
		if dst != nil && r.Data != nil {
			copy(dst[off:min(off+phys.LineSize, len(dst))], r.Data)
		}
		if r.Done > last {
			last = r.Done
		}
	}
	return last
}

// WriteDevBlock performs a multi-line D2D block write (e.g. storing a
// compressed page into a device-memory zpool with NC-write, §VI-A step 5).
func (d *Device) WriteDevBlock(req cxl.D2HReq, addr phys.Addr, src []byte, size int, now sim.Time) sim.Time {
	if !req.IsWrite() {
		panic("device: WriteDevBlock requires a write hint")
	}
	t := now + d.p.Device.LSUTransferSetup
	var last sim.Time
	var lineBuf [phys.LineSize]byte
	for off := 0; off < size; off += phys.LineSize {
		var data []byte
		if src != nil {
			n := copy(lineBuf[:], src[off:])
			for i := n; i < phys.LineSize; i++ {
				lineBuf[i] = 0
			}
			data = lineBuf[:]
		}
		r := d.D2D(req, addr+phys.Addr(off), data, t)
		if r.Done > last {
			last = r.Done
		}
	}
	return last
}
