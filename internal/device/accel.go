package device

import (
	"repro/internal/lzc"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/xxhash"
)

// Accel bundles the device's accelerator IPs: the streaming compression and
// decompression engines used by cxl-zswap and the xxhash and byte-compare
// engines used by cxl-ksm (§VI). The IPs are functionally real — they run
// the same codec and hash as the host software paths — with FPGA-calibrated
// streaming rates.
type Accel struct {
	p *timing.Params
	// engine serializes IP invocations: the CAFU instantiates one pipeline
	// per function, so concurrent offloads queue.
	compressEngine *sim.Resource
	hashEngine     *sim.Resource
}

// NewAccel returns the device's accelerator complex.
func NewAccel(p *timing.Params) *Accel {
	return &Accel{
		p:              p,
		compressEngine: sim.NewResource("accel.compress"),
		hashEngine:     sim.NewResource("accel.hash"),
	}
}

// Compress runs the compression IP over page starting at now, returning the
// compressed bytes and the completion time. The IP streams at
// CompressBytesPerSec after a fixed pipeline-fill startup.
func (a *Accel) Compress(page []byte, now sim.Time) ([]byte, sim.Time) {
	occ := a.p.Device.CompressStartup + timing.Streaming(len(page), a.p.Device.CompressBytesPerSec)
	start := a.compressEngine.Claim(now, occ)
	return lzc.Compress(nil, page), start + occ
}

// Decompress runs the decompression IP, returning the original bytes and
// completion time. dstLen is the expected decompressed size.
func (a *Accel) Decompress(comp []byte, dstLen int, now sim.Time) ([]byte, sim.Time, error) {
	occ := a.p.Device.CompressStartup + timing.Streaming(dstLen, a.p.Device.DecompressBytesPerSec)
	start := a.compressEngine.Claim(now, occ)
	out := make([]byte, dstLen)
	n, err := lzc.Decompress(out, comp)
	if err != nil {
		return nil, start + occ, err
	}
	return out[:n], start + occ, nil
}

// Hash runs the xxhash IP over page (ksm's checksum hint, §VI-B).
func (a *Accel) Hash(page []byte, now sim.Time) (uint32, sim.Time) {
	occ := timing.Streaming(len(page), a.p.Device.HashBytesPerSec)
	start := a.hashEngine.Claim(now, occ)
	return xxhash.PageChecksum(page), start + occ
}

// Compare runs the byte-by-byte comparison IP over two pages, returning the
// index of the first differing byte (len(a) if equal) and the completion
// time. Like the kernel's memcmp-based ksm comparison it stops at the first
// difference, so the engine occupancy scales with the compared prefix.
func (a *Accel) Compare(x, y []byte, now sim.Time) (int, sim.Time) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	diff := n
	for i := 0; i < n; i++ {
		if x[i] != y[i] {
			diff = i
			break
		}
	}
	compared := diff
	if compared < n {
		compared++ // the differing byte itself was examined
	}
	occ := timing.Streaming(compared, a.p.Device.CompareBytesPerSec)
	start := a.hashEngine.Claim(now, occ)
	return diff, start + occ
}
