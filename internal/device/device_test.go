package device

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/cxl"
	"repro/internal/interconnect"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

// fixture builds a home agent + link + Type-2 device.
func fixture(t testing.TB, typ cxl.DeviceType) (*Device, *coherence.HomeAgent) {
	t.Helper()
	p := timing.Default()
	llc := cache.MustNew("llc", 256<<10, 4)
	store := mem.NewStore("host")
	chs := mem.NewChannels("mc", 8, p.DRAM.WriteQueueEntries, p.DRAM.WriteDrainPerLine)
	home := coherence.NewHomeAgent(p, llc, store, chs)
	link := interconnect.NewLink("cxl", p.CXL.OneWay, p.CXL.BytesPerSec)
	cfg := DefaultConfig()
	cfg.Type = typ
	d := MustNew(p, cfg, home, link)
	return d, home
}

func line(b byte) []byte {
	d := make([]byte, phys.LineSize)
	for i := range d {
		d[i] = b
	}
	return d
}

const (
	hostAddr = phys.Addr(0x10000)
	devAddr  = phys.Addr(0x0080_0000_0000) // inside RegionDevice
)

// ---------- Table III: full matrix ----------

// TestTableIII walks the paper's Table III: for each D2H request type and
// each initial placement (HMC hit, LLC hit, LLC miss), the resulting HMC
// and LLC cache-line states must match.
func TestTableIII(t *testing.T) {
	type outcome struct{ hmc, llc cache.State }
	prime := func(t *testing.T, where string) (*Device, *coherence.HomeAgent) {
		d, home := fixture(t, cxl.Type2)
		home.Store().WriteLine(hostAddr, line(0x5A))
		switch where {
		case "hmc":
			// Bring the line into HMC Shared with a CS-read, then flush the
			// LLC copy the read may have observed (the paper's methodology).
			d.D2H(cxl.CSRead, hostAddr, nil, 0)
			home.LLC().Invalidate(hostAddr)
		case "llc":
			home.LLC().Fill(hostAddr, cache.Exclusive, line(0x5A))
		case "miss":
		}
		return d, home
	}
	check := func(t *testing.T, d *Device, home *coherence.HomeAgent, want outcome) {
		t.Helper()
		gotHMC := cache.Invalid
		if l := d.HMC().Peek(hostAddr); l.Valid() {
			gotHMC = l.State
		}
		gotLLC := cache.Invalid
		if l := home.LLC().Peek(hostAddr); l.Valid() {
			gotLLC = l.State
		}
		if gotHMC != want.hmc || gotLLC != want.llc {
			t.Errorf("states after request: HMC=%v LLC=%v, want HMC=%v LLC=%v",
				gotHMC, gotLLC, want.hmc, want.llc)
		}
	}

	cases := []struct {
		req  cxl.D2HReq
		init string
		want outcome
	}{
		// NC-P: HMC Invalid, LLC Modified — all placements.
		{cxl.NCP, "hmc", outcome{cache.Invalid, cache.Modified}},
		{cxl.NCP, "llc", outcome{cache.Invalid, cache.Modified}},
		{cxl.NCP, "miss", outcome{cache.Invalid, cache.Modified}},
		// NC-rd: no change anywhere.
		{cxl.NCRead, "hmc", outcome{cache.Shared, cache.Invalid}},
		{cxl.NCRead, "llc", outcome{cache.Invalid, cache.Exclusive}},
		{cxl.NCRead, "miss", outcome{cache.Invalid, cache.Invalid}},
		// NC-wr: both invalid.
		{cxl.NCWrite, "hmc", outcome{cache.Invalid, cache.Invalid}},
		{cxl.NCWrite, "llc", outcome{cache.Invalid, cache.Invalid}},
		{cxl.NCWrite, "miss", outcome{cache.Invalid, cache.Invalid}},
		// CO-rd: HMC hit S→E; LLC hit E → HMC E, LLC Invalid; miss → E.
		{cxl.CORead, "hmc", outcome{cache.Exclusive, cache.Invalid}},
		{cxl.CORead, "llc", outcome{cache.Exclusive, cache.Invalid}},
		{cxl.CORead, "miss", outcome{cache.Exclusive, cache.Invalid}},
		// CO-wr: HMC Modified, LLC Invalid.
		{cxl.COWrite, "hmc", outcome{cache.Modified, cache.Invalid}},
		{cxl.COWrite, "llc", outcome{cache.Modified, cache.Invalid}},
		{cxl.COWrite, "miss", outcome{cache.Modified, cache.Invalid}},
		// CS-rd: HMC Shared everywhere; LLC keeps/downgrades-to S on hit.
		{cxl.CSRead, "hmc", outcome{cache.Shared, cache.Invalid}},
		{cxl.CSRead, "llc", outcome{cache.Shared, cache.Shared}},
		{cxl.CSRead, "miss", outcome{cache.Shared, cache.Invalid}},
	}
	for _, tc := range cases {
		t.Run(tc.req.String()+"/"+tc.init, func(t *testing.T) {
			d, home := prime(t, tc.init)
			d.D2H(tc.req, hostAddr, line(0xD0), sim.Microsecond)
			check(t, d, home, tc.want)
		})
	}
}

// ---------- D2H data correctness ----------

func TestD2HReadReturnsHostData(t *testing.T) {
	d, home := fixture(t, cxl.Type2)
	home.Store().WriteLine(hostAddr, line(0x33))
	for _, req := range []cxl.D2HReq{cxl.NCRead, cxl.CSRead, cxl.CORead} {
		d.HMC().FlushAll(nil)
		res := d.D2H(req, hostAddr, nil, 0)
		if res.Data == nil || res.Data[0] != 0x33 {
			t.Errorf("%v: data = %v", req, res.Data)
		}
	}
}

func TestD2HReadSeesLatestLLCData(t *testing.T) {
	d, home := fixture(t, cxl.Type2)
	home.Store().WriteLine(hostAddr, line(0x01))          // stale
	home.LLC().Fill(hostAddr, cache.Modified, line(0x02)) // latest
	res := d.D2H(cxl.NCRead, hostAddr, nil, 0)
	if res.Data[0] != 0x02 {
		t.Fatalf("read stale data %#x", res.Data[0])
	}
}

func TestD2HHMCHitFasterThanMiss(t *testing.T) {
	d, home := fixture(t, cxl.Type2)
	home.Store().WriteLine(hostAddr, line(7))
	d.D2H(cxl.CSRead, hostAddr, nil, 0) // warm HMC
	d.ResetTiming()
	hit := d.D2H(cxl.CSRead, hostAddr, nil, 0)
	if !hit.HMCHit {
		t.Fatal("expected HMC hit")
	}
	d2, home2 := fixture(t, cxl.Type2)
	home2.Store().WriteLine(hostAddr, line(7))
	miss := d2.D2H(cxl.CSRead, hostAddr, nil, 0)
	if hit.Done >= miss.Done {
		t.Fatalf("HMC hit %v should beat miss %v", hit.Done, miss.Done)
	}
}

func TestNCWriteUpdatesHostMemory(t *testing.T) {
	d, home := fixture(t, cxl.Type2)
	d.D2H(cxl.NCWrite, hostAddr, line(0xEE), 0)
	buf := make([]byte, phys.LineSize)
	home.Store().ReadLine(hostAddr, buf)
	if buf[0] != 0xEE {
		t.Fatal("NC-wr data missing from host memory")
	}
}

func TestCOWriteDataLivesInHMCOnly(t *testing.T) {
	d, home := fixture(t, cxl.Type2)
	d.D2H(cxl.COWrite, hostAddr, line(0xAB), 0)
	if got := d.HMC().Peek(hostAddr); got == nil || got.Data[0] != 0xAB {
		t.Fatal("CO-wr data must live in HMC")
	}
	if home.Store().PeekLine(hostAddr) != nil {
		t.Fatal("CO-wr must not write host memory eagerly")
	}
	// Recall (host snoop) delivers the data.
	st, data, ok := d.RecallHMC(hostAddr)
	if !ok || st != cache.Modified || data[0] != 0xAB {
		t.Fatalf("recall = %v %v %v", st, data, ok)
	}
}

func TestHMCEvictionWritesBack(t *testing.T) {
	d, home := fixture(t, cxl.Type2)
	// Fill one HMC set (4 ways, 512 sets) with CO-writes to 5 aliasing
	// lines: stride = sets * 64 = 32 KiB.
	stride := phys.Addr(d.HMC().Sets() * phys.LineSize)
	for i := 0; i < 5; i++ {
		d.D2H(cxl.COWrite, hostAddr+phys.Addr(i)*stride, line(byte(0x10+i)), 0)
	}
	buf := make([]byte, phys.LineSize)
	home.Store().ReadLine(hostAddr, buf)
	if buf[0] != 0x10 {
		t.Fatalf("evicted modified HMC line not written back: %#x", buf[0])
	}
	if d.Stats().HMCWritebacks == 0 {
		t.Fatal("writeback not counted")
	}
}

func TestD2HOnType3Panics(t *testing.T) {
	d, _ := fixture(t, cxl.Type3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: Type-3 has no CXL.cache")
		}
	}()
	d.D2H(cxl.NCRead, hostAddr, nil, 0)
}

// ---------- D2D ----------

func TestD2DDataRoundTrip(t *testing.T) {
	d, _ := fixture(t, cxl.Type2)
	d.D2D(cxl.COWrite, devAddr, line(0x44), 0)
	res := d.D2D(cxl.CSRead, devAddr, nil, 0)
	if res.Data[0] != 0x44 {
		t.Fatalf("read %#x", res.Data[0])
	}
	if !res.DMCHit {
		t.Fatal("CO-write should have installed the line in DMC")
	}
}

func TestD2DNCWriteBypassesDMC(t *testing.T) {
	d, _ := fixture(t, cxl.Type2)
	d.D2D(cxl.CSRead, devAddr, nil, 0) // allocate in DMC
	d.D2D(cxl.NCWrite, devAddr, line(0x66), 0)
	if d.DMC().Peek(devAddr) != nil {
		t.Fatal("NC-wr must invalidate the DMC copy")
	}
	buf := make([]byte, phys.LineSize)
	d.Mem().ReadLine(devAddr, buf)
	if buf[0] != 0x66 {
		t.Fatal("NC-wr data missing from device memory")
	}
}

func TestDeviceBiasWriteFasterThanHostBias(t *testing.T) {
	// Fig. 4: NC-wr/CO-wr hitting DMC in device-bias mode are ~60 % faster.
	region := phys.Range{Base: devAddr, Size: 1 << 20}
	dHost, _ := fixture(t, cxl.Type2)
	dHost.D2D(cxl.CSRead, devAddr, nil, 0) // warm DMC
	dHost.ResetTiming()
	hostBias := dHost.D2D(cxl.COWrite, devAddr, line(1), 0)

	dDev, _ := fixture(t, cxl.Type2)
	dDev.D2D(cxl.CSRead, devAddr, nil, 0)
	dDev.EnterDeviceBias(region, 0)
	dDev.ResetTiming()
	devBias := dDev.D2D(cxl.COWrite, devAddr, line(1), 0)

	if devBias.Done >= hostBias.Done {
		t.Fatalf("device-bias write %v should beat host-bias %v", devBias.Done, hostBias.Done)
	}
	lower := 100 * float64(hostBias.Done-devBias.Done) / float64(hostBias.Done)
	if lower < 40 || lower > 75 {
		t.Fatalf("device-bias is %.0f%% lower, paper says ~60%%", lower)
	}
}

func TestSharedReadSkipsBiasCheck(t *testing.T) {
	// Fig. 4: NC-rd/CS-rd hitting DMC in shared state show no notable
	// host-bias penalty.
	d, _ := fixture(t, cxl.Type2)
	d.D2D(cxl.CSRead, devAddr, nil, 0) // line now Shared in DMC (host-bias)
	d.ResetTiming()
	hostBias := d.D2D(cxl.CSRead, devAddr, nil, 0)

	d2, _ := fixture(t, cxl.Type2)
	d2.D2D(cxl.CSRead, devAddr, nil, 0)
	d2.EnterDeviceBias(phys.Range{Base: devAddr, Size: 1 << 20}, 0)
	d2.ResetTiming()
	devBias := d2.D2D(cxl.CSRead, devAddr, nil, 0)

	diff := float64(hostBias.Done-devBias.Done) / float64(devBias.Done)
	if diff > 0.05 || diff < -0.05 {
		t.Fatalf("shared-read bias penalty = %.1f%%, want ~0", diff*100)
	}
}

func TestHostBiasWriteInvalidatesLLCCopy(t *testing.T) {
	d, home := fixture(t, cxl.Type2)
	home.LLC().Fill(devAddr, cache.Modified, line(0x09)) // host cached the devmem line
	d.D2D(cxl.COWrite, devAddr, line(0x0A), 0)
	if home.LLC().Peek(devAddr) != nil {
		t.Fatal("host-bias write must invalidate the host LLC copy")
	}
	// The host's newer data was folded into device memory before the write.
	buf := make([]byte, phys.LineSize)
	d.Mem().ReadLine(devAddr, buf)
	if buf[0] != 0x09 {
		t.Fatalf("host's modified data lost: %#x", buf[0])
	}
}

func TestD2DNCPPanics(t *testing.T) {
	d, _ := fixture(t, cxl.Type2)
	defer func() {
		if recover() == nil {
			t.Fatal("NC-P is not defined for D2D")
		}
	}()
	d.D2D(cxl.NCP, devAddr, line(1), 0)
}

// ---------- H2D ----------

func TestH2DNeverServedFromDMC(t *testing.T) {
	d, _ := fixture(t, cxl.Type2)
	d.Mem().WriteLine(devAddr, line(0x11))
	d.D2D(cxl.CSRead, devAddr, nil, 0) // line in DMC
	// Mutate DMC data via CO-write (Modified, newer than memory).
	d.D2D(cxl.COWrite, devAddr, line(0x22), 0)
	res := d.H2D(cxl.Ld, devAddr, nil, 0)
	// The modified DMC line must be written back first, then served from
	// device memory — so the host still sees the latest data.
	if res.Data[0] != 0x22 {
		t.Fatalf("H2D read returned %#x", res.Data[0])
	}
	if !res.DMCHit || res.DMCState != cache.Modified {
		t.Fatalf("res = %+v", res)
	}
}

func TestH2DType2SlowerThanType3(t *testing.T) {
	// Fig. 5: the Type-2 DMC check adds a few percent.
	d2, _ := fixture(t, cxl.Type2)
	d3, _ := fixture(t, cxl.Type3)
	t2 := d2.H2D(cxl.Ld, devAddr, nil, 0)
	t3 := d3.H2D(cxl.Ld, devAddr, nil, 0)
	if t2.Done <= t3.Done {
		t.Fatalf("Type-2 (%v) must be slower than Type-3 (%v)", t2.Done, t3.Done)
	}
}

func TestH2DDMCStatePenalties(t *testing.T) {
	// Fig. 5 / §V-C: owned and modified DMC hits are slower than misses;
	// shared hits are about the same.
	lat := func(st cache.State) sim.Time {
		d, _ := fixture(t, cxl.Type2)
		if st != cache.Invalid {
			d.SetDMCState(devAddr, st, line(1))
		}
		return d.H2D(cxl.Ld, devAddr, nil, 0).Done
	}
	miss := lat(cache.Invalid)
	shared := lat(cache.Shared)
	owned := lat(cache.Owned)
	modified := lat(cache.Modified)
	if shared != miss {
		t.Errorf("shared hit %v != miss %v (paper: negligible difference)", shared, miss)
	}
	if owned <= miss {
		t.Errorf("owned hit %v should exceed miss %v", owned, miss)
	}
	if modified <= owned {
		t.Errorf("modified hit %v should exceed owned %v", modified, owned)
	}
}

func TestH2DOwnedHitDowngradesToShared(t *testing.T) {
	d, _ := fixture(t, cxl.Type2)
	d.SetDMCState(devAddr, cache.Owned, line(1))
	d.H2D(cxl.Ld, devAddr, nil, 0)
	if got := d.DMC().Peek(devAddr).State; got != cache.Shared {
		t.Fatalf("DMC state after H2D ld = %v, want S", got)
	}
	// A second load now pays no transition.
	first := d.H2D(cxl.Ld, devAddr+0x40, nil, 0).Done // miss baseline
	d.ResetTiming()
	second := d.H2D(cxl.Ld, devAddr, nil, 0).Done
	if second > first {
		t.Fatalf("shared hit %v should not exceed miss %v", second, first)
	}
}

func TestH2DWriteInvalidatesDMC(t *testing.T) {
	d, _ := fixture(t, cxl.Type2)
	d.D2D(cxl.CSRead, devAddr, nil, 0)
	d.H2D(cxl.NtSt, devAddr, line(0x77), 0)
	if d.DMC().Peek(devAddr) != nil {
		t.Fatal("H2D write must invalidate the DMC copy")
	}
	buf := make([]byte, phys.LineSize)
	d.Mem().ReadLine(devAddr, buf)
	if buf[0] != 0x77 {
		t.Fatal("H2D write data missing")
	}
}

func TestH2DBiasFlip(t *testing.T) {
	d, _ := fixture(t, cxl.Type2)
	region := phys.Range{Base: devAddr, Size: 1 << 20}
	d.EnterDeviceBias(region, 0)
	if d.BiasOf(devAddr) != DeviceBias {
		t.Fatal("region should be device-bias")
	}
	res := d.H2D(cxl.Ld, devAddr, nil, 0)
	if !res.BiasFlipped {
		t.Fatal("H2D to device-bias region must flip it")
	}
	if d.BiasOf(devAddr) != HostBias {
		t.Fatal("region should be back to host-bias")
	}
	if d.Stats().BiasFlips != 1 {
		t.Fatal("flip not counted")
	}
	// Flip costs time: compare with a host-bias access.
	d2, _ := fixture(t, cxl.Type2)
	plain := d2.H2D(cxl.Ld, devAddr, nil, 0)
	if res.Done <= plain.Done {
		t.Fatal("bias flip should cost extra latency")
	}
}

func TestEnterDeviceBiasFlushesHostCopies(t *testing.T) {
	d, home := fixture(t, cxl.Type2)
	home.LLC().Fill(devAddr, cache.Modified, line(0x31))
	region := phys.Range{Base: devAddr, Size: 1 << 20}
	done := d.EnterDeviceBias(region, 0)
	if home.LLC().Peek(devAddr) != nil {
		t.Fatal("host copies must be flushed before device bias")
	}
	buf := make([]byte, phys.LineSize)
	d.Mem().ReadLine(devAddr, buf)
	if buf[0] != 0x31 {
		t.Fatal("flushed dirty data must land in device memory")
	}
	if done <= 0 {
		t.Fatal("flush must take time")
	}
	d.ExitDeviceBias(region)
	if d.BiasOf(devAddr) != HostBias {
		t.Fatal("ExitDeviceBias failed")
	}
}

// ---------- block transfers ----------

func TestBlockTransfersMoveData(t *testing.T) {
	d, home := fixture(t, cxl.Type2)
	src := make([]byte, phys.PageSize)
	for i := range src {
		src[i] = byte(i * 7)
	}
	home.Store().Write(hostAddr, src)
	dst := make([]byte, phys.PageSize)
	done := d.ReadHostBlock(cxl.NCRead, hostAddr, phys.PageSize, dst, 0)
	if !bytes.Equal(dst, src) {
		t.Fatal("ReadHostBlock data mismatch")
	}
	if done <= 0 {
		t.Fatal("block read must take time")
	}
	// Write it into device memory via D2D NC-write (the zswap zpool path).
	d.WriteDevBlock(cxl.NCWrite, devAddr, dst, phys.PageSize, done)
	out := make([]byte, phys.PageSize)
	d.Mem().Read(devAddr, out)
	if !bytes.Equal(out, src) {
		t.Fatal("WriteDevBlock data mismatch")
	}
	// And push it back to host LLC with NC-P (the decompression return path).
	d.WriteHostBlock(cxl.NCP, hostAddr+0x100000, dst, phys.PageSize, done)
	for off := 0; off < phys.PageSize; off += phys.LineSize {
		l := home.LLC().Peek(hostAddr + 0x100000 + phys.Addr(off))
		if l == nil || l.State != cache.Modified {
			t.Fatalf("NC-P line at offset %d not in LLC Modified", off)
		}
	}
}

func TestBlockTransferPipelines(t *testing.T) {
	// A 4 KB NC-read block should complete far faster than 64 sequential
	// unpipelined reads (64 × ~245 ns ≈ 15.7 µs): the credits keep ~21 in
	// flight.
	d, _ := fixture(t, cxl.Type2)
	done := d.ReadHostBlock(cxl.NCRead, hostAddr, phys.PageSize, nil, 0)
	if done > 4*sim.Microsecond {
		t.Fatalf("4KB block read took %v; pipelining broken", done)
	}
	if done < 500*sim.Nanosecond {
		t.Fatalf("4KB block read took %v; implausibly fast", done)
	}
}

func TestBlockTransferHintValidation(t *testing.T) {
	d, _ := fixture(t, cxl.Type2)
	for _, fn := range []func(){
		func() { d.ReadHostBlock(cxl.NCWrite, hostAddr, 64, nil, 0) },
		func() { d.WriteHostBlock(cxl.NCRead, hostAddr, nil, 64, 0) },
		func() { d.ReadDevBlock(cxl.COWrite, devAddr, 64, nil, 0) },
		func() { d.WriteDevBlock(cxl.CSRead, devAddr, nil, 64, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for wrong hint direction")
				}
			}()
			fn()
		}()
	}
}

func TestNewValidation(t *testing.T) {
	p := timing.Default()
	if _, err := New(p, DefaultConfig(), nil, nil); err == nil {
		t.Fatal("nil home/link must error")
	}
	llc := cache.MustNew("llc", 64<<10, 4)
	home := coherence.NewHomeAgent(p, llc, mem.NewStore("h"), mem.NewChannels("m", 1, 32, sim.Nanosecond))
	link := interconnect.NewLink("l", 1, 1e9)
	cfg := DefaultConfig()
	cfg.Type = cxl.DeviceType(9)
	if _, err := New(p, cfg, home, link); err == nil {
		t.Fatal("unknown personality should be rejected")
	}
	cfg = DefaultConfig()
	cfg.HMCBytes = 100 // invalid geometry
	if _, err := New(p, cfg, home, link); err == nil {
		t.Fatal("bad HMC geometry should be rejected")
	}
}

func TestType3HasNoCaches(t *testing.T) {
	d, _ := fixture(t, cxl.Type3)
	if d.HMC() != nil || d.DMC() != nil {
		t.Fatal("Type-3 must not have device caches")
	}
	if d.Type() != cxl.Type3 {
		t.Fatal("Type() wrong")
	}
}

func TestAccelCompressRoundTrip(t *testing.T) {
	p := timing.Default()
	a := NewAccel(p)
	page := bytes.Repeat([]byte("cxl-zswap!"), 410)[:4096]
	comp, done1 := a.Compress(page, 0)
	if len(comp) >= len(page) {
		t.Fatalf("compressible page grew: %d", len(comp))
	}
	out, done2, err := a.Decompress(comp, 4096, done1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, page) {
		t.Fatal("accel round trip mismatch")
	}
	if done2 <= done1 || done1 <= 0 {
		t.Fatal("accel must consume time")
	}
	// The IP is 1.8–2.8× faster than the host CPU for a 4 KB page (§VI-A).
	speedup := float64(p.SW.HostCompress4K) / float64(done1)
	if speedup < 1.8 || speedup > 2.8 {
		t.Fatalf("compress IP speedup = %.2f", speedup)
	}
}

func TestAccelHashMatchesSoftware(t *testing.T) {
	p := timing.Default()
	a := NewAccel(p)
	page := bytes.Repeat([]byte{0x5C}, 4096)
	h1, done := a.Hash(page, 0)
	if done <= 0 {
		t.Fatal("hash must take time")
	}
	h2, _ := a.Hash(page, done)
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
}

func TestAccelCompareEarlyOut(t *testing.T) {
	p := timing.Default()
	a := NewAccel(p)
	x := make([]byte, 4096)
	y := make([]byte, 4096)
	idx, dEq := a.Compare(x, y, 0)
	if idx != 4096 {
		t.Fatalf("equal pages: idx = %d", idx)
	}
	y[10] = 1
	aFresh := NewAccel(p) // fresh engine: the shared one queues calls
	idx, dNeq := aFresh.Compare(x, y, 0)
	if idx != 10 {
		t.Fatalf("first diff = %d", idx)
	}
	// Early-out must be cheaper than the full comparison.
	if dNeq >= dEq {
		t.Fatalf("early-out compare (%v) should beat full compare (%v)", dNeq, dEq)
	}
}

func TestAccelEngineSerializes(t *testing.T) {
	p := timing.Default()
	a := NewAccel(p)
	page := make([]byte, 4096)
	_, d1 := a.Compress(page, 0)
	_, d2 := a.Compress(page, 0) // queued behind the first
	if d2 < 2*d1-sim.Nanosecond {
		t.Fatalf("second compression at %v should queue behind first at %v", d2, d1)
	}
}

func TestAccelDecompressCorrupt(t *testing.T) {
	a := NewAccel(timing.Default())
	if _, _, err := a.Decompress([]byte{0xF0}, 64, 0); err == nil {
		t.Fatal("corrupt input must error")
	}
}

func TestBiasModeString(t *testing.T) {
	if HostBias.String() != "host-bias" || DeviceBias.String() != "device-bias" {
		t.Fatal("BiasMode names wrong")
	}
}

// ---------- Type-1 personality (Table I extension) ----------

func TestType1CoherentD2HWithoutDeviceMemory(t *testing.T) {
	d, home := fixture(t, cxl.Type1)
	if d.HMC() == nil {
		t.Fatal("Type-1 must keep the coherent device cache")
	}
	if d.DMC() != nil {
		t.Fatal("Type-1 must not have a device-memory cache")
	}
	home.Store().WriteLine(hostAddr, line(0x5C))
	res := d.D2H(cxl.CSRead, hostAddr, nil, 0)
	if res.Data[0] != 0x5C {
		t.Fatal("Type-1 D2H read failed")
	}
	d.ResetTiming()
	res = d.D2H(cxl.CSRead, hostAddr, nil, 0)
	if !res.HMCHit {
		t.Fatal("Type-1 device cache should serve the repeat read")
	}
}

func TestType1RejectsMemProtocol(t *testing.T) {
	d, _ := fixture(t, cxl.Type1)
	for name, fn := range map[string]func(){
		"D2D": func() { d.D2D(cxl.CSRead, devAddr, nil, 0) },
		"H2D": func() { d.H2D(cxl.Ld, devAddr, nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic on a Type-1 device (no CXL.mem)", name)
				}
			}()
			fn()
		}()
	}
}

// BenchmarkD2HThroughput measures the simulator's own speed: simulated D2H
// requests processed per wall-clock second.
func BenchmarkD2HThroughput(b *testing.B) {
	d, home := fixture(b, cxl.Type2)
	home.Store().WriteLine(hostAddr, line(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.D2H(cxl.NCRead, hostAddr+phys.Addr((i%4096)*64), nil, 0)
	}
}
