package kvs

import (
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/lzc"
	"repro/internal/phys"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/ycsb"
)

// LoadGen drives a set of servers with an open-loop request stream — the
// YCSB-client side of §VII. Arrivals come from a workload.ArrivalSource
// (stationary Poisson by default, or a diurnal/bursty Temporal source) or
// replay a recorded workload.Trace verbatim; either way they are scheduled
// on the engine so request handling interleaves with kswapd/ksmd activity
// in simulated time.
type LoadGen struct {
	eng      *sim.Engine
	servers  []*Server
	gen      *ycsb.Generator
	rng      *rand.Rand
	arrivals workload.ArrivalSource
	rate     float64
	// replay holds the trace records when the generator replays instead of
	// drawing; base anchors record time zero at Start's engine time.
	replay    []workload.Request
	replayIdx int
	base      sim.Time
	next      int
	stopped   bool
}

// NewLoadGen builds a Poisson load generator at ratePerSec aggregate ops/s.
func NewLoadGen(eng *sim.Engine, servers []*Server, gen *ycsb.Generator, ratePerSec float64, seed int64) *LoadGen {
	if ratePerSec <= 0 {
		panic("kvs: positive rate required")
	}
	l := NewLoadGenArrivals(eng, servers, gen, workload.Poisson{RatePerSec: ratePerSec}, seed)
	l.rate = ratePerSec
	return l
}

// NewLoadGenArrivals builds a load generator drawing gaps from src — the
// temporal-model entry point (diurnal curves, burst modulation).
func NewLoadGenArrivals(eng *sim.Engine, servers []*Server, gen *ycsb.Generator, src workload.ArrivalSource, seed int64) *LoadGen {
	if len(servers) == 0 {
		panic("kvs: servers required")
	}
	if src == nil {
		panic("kvs: arrival source required")
	}
	return &LoadGen{
		eng:      eng,
		servers:  servers,
		gen:      gen,
		rng:      rng.New(seed),
		arrivals: src,
	}
}

// NewLoadGenTrace builds a load generator that replays a recorded trace:
// each record's op (Kind, Key) fires at Start time + record At, so the
// same stream re-runs bit-for-bit regardless of the policies under test.
func NewLoadGenTrace(eng *sim.Engine, servers []*Server, t *workload.Trace) *LoadGen {
	if len(servers) == 0 {
		panic("kvs: servers required")
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return &LoadGen{eng: eng, servers: servers, replay: t.Requests}
}

// RatePerSec reports the configured aggregate arrival rate (0 for custom
// sources and trace replay, which have no single stationary rate).
func (l *LoadGen) RatePerSec() float64 { return l.rate }

// Start schedules the arrival process beginning at the engine's current
// time; it continues until Stop, the horizon passed to RunFor, or (in
// replay mode) the end of the trace.
func (l *LoadGen) Start() {
	l.stopped = false
	l.base = l.eng.Now()
	l.replayIdx = 0
	l.scheduleNext(l.eng.Now())
}

// Stop halts further arrivals.
func (l *LoadGen) Stop() { l.stopped = true }

func (l *LoadGen) scheduleNext(now sim.Time) {
	var at sim.Time
	if l.replay != nil {
		if l.replayIdx >= len(l.replay) {
			return
		}
		at = l.base + l.replay[l.replayIdx].At
		if at < now {
			at = now
		}
	} else {
		at = now + l.arrivals.GapAt(l.rng, now-l.base)
		if at < now { // GapAt returned Forever and saturated
			at = sim.Forever
		}
	}
	// Arrivals are the densest event stream in the §VII runs; carrying the
	// generator through AtCall keeps the steady state allocation-free where
	// a closure here would allocate per request.
	l.eng.AtCall(at, loadGenArrive, l)
}

func loadGenArrive(arg any) {
	l := arg.(*LoadGen)
	if l.stopped {
		return
	}
	var op ycsb.Op
	if l.replay != nil {
		rec := l.replay[l.replayIdx]
		l.replayIdx++
		op = ycsb.Op{Kind: ycsb.OpKind(rec.Kind), Key: rec.Key}
	} else {
		op = l.gen.Next()
	}
	s := l.servers[l.next%len(l.servers)]
	l.next++
	s.Serve(op, l.eng.Now())
	l.scheduleNext(l.eng.Now())
}

// RecordYCSB records the request stream a live generator would produce: n
// ops with gaps drawn from src, exactly the draw order the live path uses
// (gap first, then op), so a recorded trace replays the identical stream.
func RecordYCSB(gen *ycsb.Generator, src workload.ArrivalSource, seed int64, n int, label string) *workload.Trace {
	r := rng.New(seed)
	t := &workload.Trace{Workload: label, Seed: seed, Requests: make([]workload.Request, n)}
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		gap := src.GapAt(r, now)
		if now > sim.Forever-gap {
			now = sim.Forever
		} else {
			now += gap
		}
		op := gen.Next()
		t.Requests[i] = workload.Request{At: now, Key: op.Key, Kind: uint8(op.Kind)}
	}
	return t
}

// Antagonist is the memory-churning co-runner of the zswap experiment: it
// periodically allocates fresh pages and frees old ones, keeping the system
// under the reclaim watermarks so kswapd stays busy.
type Antagonist struct {
	eng  *sim.Engine
	proc *sim.Proc
	as   *kernel.AddressSpace
	rng  *rand.Rand

	// PagesPerBurst allocations happen every Interval.
	PagesPerBurst int
	Interval      sim.Time
	// Gaps, when set, replaces the fixed Interval with drawn inter-burst
	// gaps (e.g. a bursty workload.Temporal source), turning the steady
	// churner into an episodic memory-pressure driver.
	Gaps workload.ArrivalSource
	// Keep bounds the working set: older pages are unmapped beyond it.
	Keep int

	nextVPN uint64
	stopped bool
	// stepFn is the step method bound once, so rescheduling it costs no
	// per-event method-value allocation.
	stepFn func(*sim.Proc)
}

// PollutedLines reports the cumulative LLC displacement of the antagonist's
// page churn (each fresh page streams through the cache).
func (a *Antagonist) PollutedLines() uint64 { return a.nextVPN * phys.LinesPerPage }

// NewAntagonist builds the churner on core (its allocations' direct-reclaim
// work runs there).
func NewAntagonist(eng *sim.Engine, as *kernel.AddressSpace, core *sim.Resource, seed int64) *Antagonist {
	a := &Antagonist{
		eng:           eng,
		proc:          sim.NewProc(eng, "antagonist", core),
		as:            as,
		rng:           rng.New(seed),
		PagesPerBurst: 16,
		Interval:      500 * sim.Microsecond,
		Keep:          256,
	}
	a.stepFn = a.step
	return a
}

// Start begins the churn loop.
func (a *Antagonist) Start() {
	a.stopped = false
	a.proc.AdvanceTo(a.eng.Now())
	a.proc.Schedule(a.stepFn)
}

// Stop halts the loop.
func (a *Antagonist) Stop() { a.stopped = true }

// Allocated reports how many pages the antagonist has mapped so far.
func (a *Antagonist) Allocated() uint64 { return a.nextVPN }

func (a *Antagonist) step(p *sim.Proc) {
	if a.stopped {
		return
	}
	page := lzc.SyntheticPage(a.rng, phys.PageSize, 0.7)
	for i := 0; i < a.PagesPerBurst; i++ {
		if err := a.as.Map(a.nextVPN, page, p); err != nil {
			break // OOM under extreme pressure: retry next burst
		}
		a.nextVPN++
		if a.nextVPN > uint64(a.Keep) {
			a.as.Unmap(a.nextVPN - uint64(a.Keep) - 1)
		}
	}
	d := a.Interval
	if a.Gaps != nil {
		d = a.Gaps.GapAt(a.rng, a.eng.Now())
	}
	p.Sleep(d)
	p.Schedule(a.stepFn)
}
