package kvs

import (
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/lzc"
	"repro/internal/phys"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/ycsb"
)

// LoadGen drives a set of servers with an open-loop Poisson request stream
// — the YCSB-client side of §VII. Arrivals are scheduled on the engine so
// request handling interleaves with kswapd/ksmd activity in simulated time.
type LoadGen struct {
	eng      *sim.Engine
	servers  []*Server
	gen      *ycsb.Generator
	rng      *rand.Rand
	arrivals workload.Poisson
	next     int
	stopped  bool
}

// NewLoadGen builds a Poisson load generator at ratePerSec aggregate ops/s.
func NewLoadGen(eng *sim.Engine, servers []*Server, gen *ycsb.Generator, ratePerSec float64, seed int64) *LoadGen {
	if len(servers) == 0 || ratePerSec <= 0 {
		panic("kvs: servers and positive rate required")
	}
	return &LoadGen{
		eng:      eng,
		servers:  servers,
		gen:      gen,
		rng:      rng.New(seed),
		arrivals: workload.Poisson{RatePerSec: ratePerSec},
	}
}

// RatePerSec reports the aggregate arrival rate across all servers.
func (l *LoadGen) RatePerSec() float64 { return l.arrivals.RatePerSec }

// Start schedules the arrival process beginning at the engine's current
// time; it continues until Stop or the horizon passed to RunFor.
func (l *LoadGen) Start() {
	l.stopped = false
	l.scheduleNext(l.eng.Now())
}

// Stop halts further arrivals.
func (l *LoadGen) Stop() { l.stopped = true }

func (l *LoadGen) scheduleNext(now sim.Time) {
	gap := l.arrivals.Gap(l.rng)
	// Arrivals are the densest event stream in the §VII runs; carrying the
	// generator through AtCall keeps the steady state allocation-free where
	// a closure here would allocate per request.
	l.eng.AtCall(now+gap, loadGenArrive, l)
}

func loadGenArrive(arg any) {
	l := arg.(*LoadGen)
	if l.stopped {
		return
	}
	op := l.gen.Next()
	s := l.servers[l.next%len(l.servers)]
	l.next++
	s.Serve(op, l.eng.Now())
	l.scheduleNext(l.eng.Now())
}

// Antagonist is the memory-churning co-runner of the zswap experiment: it
// periodically allocates fresh pages and frees old ones, keeping the system
// under the reclaim watermarks so kswapd stays busy.
type Antagonist struct {
	eng  *sim.Engine
	proc *sim.Proc
	as   *kernel.AddressSpace
	rng  *rand.Rand

	// PagesPerBurst allocations happen every Interval.
	PagesPerBurst int
	Interval      sim.Time
	// Keep bounds the working set: older pages are unmapped beyond it.
	Keep int

	nextVPN uint64
	stopped bool
	// stepFn is the step method bound once, so rescheduling it costs no
	// per-event method-value allocation.
	stepFn func(*sim.Proc)
}

// PollutedLines reports the cumulative LLC displacement of the antagonist's
// page churn (each fresh page streams through the cache).
func (a *Antagonist) PollutedLines() uint64 { return a.nextVPN * phys.LinesPerPage }

// NewAntagonist builds the churner on core (its allocations' direct-reclaim
// work runs there).
func NewAntagonist(eng *sim.Engine, as *kernel.AddressSpace, core *sim.Resource, seed int64) *Antagonist {
	a := &Antagonist{
		eng:           eng,
		proc:          sim.NewProc(eng, "antagonist", core),
		as:            as,
		rng:           rng.New(seed),
		PagesPerBurst: 16,
		Interval:      500 * sim.Microsecond,
		Keep:          256,
	}
	a.stepFn = a.step
	return a
}

// Start begins the churn loop.
func (a *Antagonist) Start() {
	a.stopped = false
	a.proc.AdvanceTo(a.eng.Now())
	a.proc.Schedule(a.stepFn)
}

// Stop halts the loop.
func (a *Antagonist) Stop() { a.stopped = true }

// Allocated reports how many pages the antagonist has mapped so far.
func (a *Antagonist) Allocated() uint64 { return a.nextVPN }

func (a *Antagonist) step(p *sim.Proc) {
	if a.stopped {
		return
	}
	page := lzc.SyntheticPage(a.rng, phys.PageSize, 0.7)
	for i := 0; i < a.PagesPerBurst; i++ {
		if err := a.as.Map(a.nextVPN, page, p); err != nil {
			break // OOM under extreme pressure: retry next burst
		}
		a.nextVPN++
		if a.nextVPN > uint64(a.Keep) {
			a.as.Unmap(a.nextVPN - uint64(a.Keep) - 1)
		}
	}
	p.Sleep(a.Interval)
	p.Schedule(a.stepFn)
}
