// Package kvs models the latency-sensitive co-running application of §VII:
// a Redis-like in-memory key-value store serving YCSB operations. Its
// dataset lives in a simulated kernel address space, so memory pressure
// swaps real pages out through zswap and requests take real major faults;
// its serving loop runs on a simulated core, so kswapd/ksmd work on the
// same core steals cycles; and cache pollution reported by the offload
// backends inflates service times. Tail latency (p99) emerges from those
// three mechanisms — the paper's interference story — rather than from a
// fitted curve.
package kvs

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/ycsb"
)

// Config shapes one server.
type Config struct {
	// Records is the number of key-value records the server holds.
	Records uint64
	// ValueBytes is the stored value size (Redis-style small values).
	ValueBytes int
	// BaseService is the CPU time to parse, look up and respond to one
	// request absent interference.
	BaseService sim.Time
	// PollutionPenaltyPerLine converts displaced-LLC-line counts reported
	// by the offload backends into extra service time (cache refill).
	PollutionPenaltyPerLine sim.Time
	// PollutionCap bounds the per-request pollution penalty (a request
	// cannot miss more lines than it touches).
	PollutionCap sim.Time
}

// DefaultConfig returns a Redis-like configuration.
func DefaultConfig() Config {
	return Config{
		Records:                 20000,
		ValueBytes:              256,
		BaseService:             8 * sim.Microsecond,
		PollutionPenaltyPerLine: 60 * sim.Nanosecond,
		PollutionCap:            6 * sim.Microsecond,
	}
}

// Validate reports the first problem, or "".
func (c Config) Validate() string {
	switch {
	case c.Records == 0:
		return "kvs: Records must be positive"
	case c.ValueBytes <= 0 || c.ValueBytes > phys.PageSize:
		return "kvs: ValueBytes out of range"
	case c.BaseService <= 0:
		return "kvs: BaseService must be positive"
	}
	return ""
}

// Server is one KVS instance pinned to a core.
type Server struct {
	cfg  Config
	eng  *sim.Engine
	core *sim.Resource
	as   *kernel.AddressSpace
	// req is the request process, reused (via Restart) across requests:
	// requests run synchronously inside their arrival event, so one chain
	// is always finished before the next begins and reuse is safe.
	req *sim.Proc

	recPerPage uint64
	// pollution returns the cumulative polluted-line count of the kernel
	// features; deltas between requests become cache-refill penalties.
	pollution    func() uint64
	lastPolluted uint64

	lat      *stats.Sample
	faultLat *stats.Sample
	cleanLat *stats.Sample
	served   uint64
	faults   uint64
	verifyOK bool
}

// NewServer builds a server whose dataset is mapped into as (pages are
// allocated from the shared MM, participating in reclaim). pollution may be
// nil.
func NewServer(eng *sim.Engine, cfg Config, core *sim.Resource, as *kernel.AddressSpace, pollution func() uint64) (*Server, error) {
	if msg := cfg.Validate(); msg != "" {
		return nil, fmt.Errorf("%s", msg)
	}
	s := &Server{
		cfg:        cfg,
		eng:        eng,
		core:       core,
		as:         as,
		recPerPage: uint64(phys.PageSize / cfg.ValueBytes),
		pollution:  pollution,
		lat:        stats.NewSample(4096),
		faultLat:   stats.NewSample(256),
		cleanLat:   stats.NewSample(4096),
		verifyOK:   true,
	}
	s.req = sim.NewProc(eng, "req", core)
	return s, nil
}

// LoadDataset maps the dataset pages with deterministic, compressible
// values. It must run before serving; allocation pressure may already
// trigger reclaim (charged to proc).
func (s *Server) LoadDataset(proc *sim.Proc) error {
	pages := (s.cfg.Records + s.recPerPage - 1) / s.recPerPage
	buf := make([]byte, phys.PageSize)
	for vpn := uint64(0); vpn < pages; vpn++ {
		for r := uint64(0); r < s.recPerPage; r++ {
			key := vpn*s.recPerPage + r
			fillValue(buf[int(r)*s.cfg.ValueBytes:int(r+1)*s.cfg.ValueBytes], key)
		}
		if err := s.as.Map(vpn, buf, proc); err != nil {
			return fmt.Errorf("kvs: loading page %d: %w", vpn, err)
		}
	}
	return nil
}

// fillValue writes the canonical value for key: a compressible pattern that
// still identifies the key, so reads verify integrity through swap cycles.
func fillValue(dst []byte, key uint64) {
	for i := range dst {
		dst[i] = byte(key >> (uint(i%8) * 8))
	}
}

// valueOK checks a read value against the canonical pattern.
func valueOK(v []byte, key uint64) bool {
	for i := range v {
		if v[i] != byte(key>>(uint(i%8)*8)) {
			return false
		}
	}
	return true
}

// Serve processes one operation arriving at time arrival. It runs the full
// request on the server's core, faulting pages in as needed, and records
// the end-to-end latency.
func (s *Server) Serve(op ycsb.Op, arrival sim.Time) {
	proc := s.req
	proc.Restart()
	proc.AdvanceTo(arrival)

	// Cache-pollution penalty: lines displaced by kernel features since the
	// last request must be refilled.
	if s.pollution != nil {
		cur := s.pollution()
		delta := cur - s.lastPolluted
		s.lastPolluted = cur
		pen := sim.Time(delta) * s.cfg.PollutionPenaltyPerLine
		if pen > s.cfg.PollutionCap {
			pen = s.cfg.PollutionCap
		}
		if pen > 0 {
			proc.Compute(pen)
		}
	}

	proc.Compute(s.cfg.BaseService / 2)

	key := op.Key % s.cfg.Records
	vpn := key / s.recPerPage
	faultsBefore := s.as.MM().Stats().MajorFaults
	switch op.Kind {
	case ycsb.Read:
		page, err := s.as.Read(vpn, proc)
		if err == nil {
			off := int(key%s.recPerPage) * s.cfg.ValueBytes
			if !valueOK(page[off:off+s.cfg.ValueBytes], key) {
				s.verifyOK = false
			}
		}
	case ycsb.Update, ycsb.Insert:
		page, err := s.as.Read(vpn, proc)
		if err == nil {
			off := int(key%s.recPerPage) * s.cfg.ValueBytes
			fillValue(page[off:off+s.cfg.ValueBytes], key)
			if werr := s.as.Write(vpn, page, proc); werr != nil {
				s.verifyOK = false
			}
		}
	}
	faulted := s.as.MM().Stats().MajorFaults > faultsBefore
	if faulted {
		s.faults++
	}

	proc.Compute(s.cfg.BaseService / 2)
	latUs := (proc.Now() - arrival).Microseconds()
	s.lat.Add(latUs)
	if faulted {
		s.faultLat.Add(latUs)
	} else {
		s.cleanLat.Add(latUs)
	}
	s.served++
}

// P99 reports the 99th-percentile latency in microseconds.
func (s *Server) P99() float64 { return s.lat.P99() }

// Latencies exposes the recorded sample.
func (s *Server) Latencies() *stats.Sample { return s.lat }

// FaultLatencies exposes latencies of requests that took a major fault.
func (s *Server) FaultLatencies() *stats.Sample { return s.faultLat }

// CleanLatencies exposes latencies of fault-free requests.
func (s *Server) CleanLatencies() *stats.Sample { return s.cleanLat }

// Served reports how many requests completed.
func (s *Server) Served() uint64 { return s.served }

// Faults reports how many requests took a major fault.
func (s *Server) Faults() uint64 { return s.faults }

// VerifyOK reports whether every read returned the canonical value —
// end-to-end data integrity through compression/swap/merge cycles.
func (s *Server) VerifyOK() bool { return s.verifyOK }
