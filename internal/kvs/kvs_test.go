package kvs

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/ycsb"
)

type fix struct {
	eng  *sim.Engine
	mm   *kernel.MM
	core *sim.Resource
	srv  *Server
}

func newFix(t *testing.T, totalPages int, cfg Config, pollution func() uint64) *fix {
	t.Helper()
	eng := sim.NewEngine()
	mm := kernel.NewMM(timing.Default(), mem.NewStore("host"), 0, totalPages)
	mm.SetSwap(kernel.NewBackingSwap(20*sim.Microsecond, 25*sim.Microsecond))
	core := sim.NewResource("core0")
	as := mm.NewAddressSpace(1)
	srv, err := NewServer(eng, cfg, core, as, pollution)
	if err != nil {
		t.Fatal(err)
	}
	loader := sim.NewProc(eng, "loader", nil)
	if err := srv.LoadDataset(loader); err != nil {
		t.Fatal(err)
	}
	return &fix{eng: eng, mm: mm, core: core, srv: srv}
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Records = 1024 // 64 pages at 256 B values
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Records: 0, ValueBytes: 256, BaseService: 1},
		{Records: 10, ValueBytes: 0, BaseService: 1},
		{Records: 10, ValueBytes: 8192, BaseService: 1},
		{Records: 10, ValueBytes: 256, BaseService: 0},
	}
	for i, c := range bad {
		if c.Validate() == "" {
			t.Errorf("config %d accepted", i)
		}
	}
	if DefaultConfig().Validate() != "" {
		t.Fatal("default config invalid")
	}
}

func TestServeReadsVerify(t *testing.T) {
	f := newFix(t, 256, smallCfg(), nil)
	gen := ycsb.MustNewGenerator(ycsb.C, ycsb.Uniform, 1024, 1)
	for i := 0; i < 500; i++ {
		f.srv.Serve(gen.Next(), f.eng.Now())
	}
	if !f.srv.VerifyOK() {
		t.Fatal("read verification failed")
	}
	if f.srv.Served() != 500 {
		t.Fatalf("served = %d", f.srv.Served())
	}
	if f.srv.P99() <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestUpdatesPersist(t *testing.T) {
	f := newFix(t, 256, smallCfg(), nil)
	f.srv.Serve(ycsb.Op{Kind: ycsb.Update, Key: 7}, 0)
	f.srv.Serve(ycsb.Op{Kind: ycsb.Read, Key: 7}, 0)
	if !f.srv.VerifyOK() {
		t.Fatal("update broke verification")
	}
}

func TestFaultsUnderMemoryPressure(t *testing.T) {
	// Dataset 64 pages but only 40 frames: serving faults pages back in
	// through swap, and data stays correct.
	f := newFix(t, 40, smallCfg(), nil)
	gen := ycsb.MustNewGenerator(ycsb.A, ycsb.Uniform, 1024, 2)
	for i := 0; i < 2000; i++ {
		f.srv.Serve(gen.Next(), f.eng.Now())
	}
	if f.srv.Faults() == 0 {
		t.Fatal("expected major faults under pressure")
	}
	if !f.srv.VerifyOK() {
		t.Fatal("data corrupted through swap cycles")
	}
	if f.mm.Stats().SwapOuts == 0 {
		t.Fatal("no reclaim happened")
	}
}

func TestFaultingRequestsAreSlower(t *testing.T) {
	pressured := newFix(t, 40, smallCfg(), nil)
	relaxed := newFix(t, 256, smallCfg(), nil)
	gen1 := ycsb.MustNewGenerator(ycsb.C, ycsb.Uniform, 1024, 3)
	gen2 := ycsb.MustNewGenerator(ycsb.C, ycsb.Uniform, 1024, 3)
	for i := 0; i < 2000; i++ {
		pressured.srv.Serve(gen1.Next(), pressured.eng.Now())
		relaxed.srv.Serve(gen2.Next(), relaxed.eng.Now())
	}
	if pressured.srv.P99() <= relaxed.srv.P99() {
		t.Fatalf("pressure p99 %.1f <= relaxed p99 %.1f", pressured.srv.P99(), relaxed.srv.P99())
	}
}

func TestPollutionPenaltyInflatesService(t *testing.T) {
	var polluted uint64
	cfg := smallCfg()
	noisy := newFix(t, 256, cfg, func() uint64 { return polluted })
	quiet := newFix(t, 256, cfg, nil)
	for i := 0; i < 200; i++ {
		polluted += 200 // kernel features trash 200 lines between requests
		noisy.srv.Serve(ycsb.Op{Kind: ycsb.Read, Key: uint64(i)}, noisy.eng.Now())
		quiet.srv.Serve(ycsb.Op{Kind: ycsb.Read, Key: uint64(i)}, quiet.eng.Now())
	}
	if noisy.srv.P99() <= quiet.srv.P99() {
		t.Fatalf("pollution did not inflate latency: %.1f vs %.1f", noisy.srv.P99(), quiet.srv.P99())
	}
}

func TestPollutionPenaltyCapped(t *testing.T) {
	var polluted uint64
	cfg := smallCfg()
	f := newFix(t, 256, cfg, func() uint64 { return polluted })
	polluted = 1 << 40 // absurd delta must be capped
	f.srv.Serve(ycsb.Op{Kind: ycsb.Read, Key: 1}, 0)
	max := (cfg.BaseService + cfg.PollutionCap).Microseconds() + 1
	if got := f.srv.P99(); got > max {
		t.Fatalf("latency %.1f exceeds capped bound %.1f", got, max)
	}
}

func TestCoreContentionRaisesTail(t *testing.T) {
	// A co-runner burning the core in bursts (kswapd-like) inflates p99.
	f := newFix(t, 256, smallCfg(), nil)
	hog := sim.NewProc(f.eng, "hog", f.core)
	gen := ycsb.MustNewGenerator(ycsb.C, ycsb.Uniform, 1024, 4)
	var now sim.Time
	for i := 0; i < 1000; i++ {
		if i%50 == 0 {
			hog.AdvanceTo(now)
			hog.Compute(100 * sim.Microsecond) // burst
		}
		f.srv.Serve(gen.Next(), now)
		now += 20 * sim.Microsecond
	}
	base := newFix(t, 256, smallCfg(), nil)
	gen2 := ycsb.MustNewGenerator(ycsb.C, ycsb.Uniform, 1024, 4)
	now = 0
	for i := 0; i < 1000; i++ {
		base.srv.Serve(gen2.Next(), now)
		now += 20 * sim.Microsecond
	}
	if f.srv.P99() < 2*base.srv.P99() {
		t.Fatalf("core contention p99 %.1f, baseline %.1f: tail should spike", f.srv.P99(), base.srv.P99())
	}
}

func TestLoadGenPoissonArrivals(t *testing.T) {
	f := newFix(t, 256, smallCfg(), nil)
	gen := ycsb.MustNewGenerator(ycsb.B, ycsb.Uniform, 1024, 5)
	lg := NewLoadGen(f.eng, []*Server{f.srv}, gen, 50_000, 6)
	lg.Start()
	f.eng.RunUntil(100 * sim.Millisecond)
	lg.Stop()
	f.eng.Run()
	// ~5000 requests expected over 100 ms at 50k/s.
	if f.srv.Served() < 4000 || f.srv.Served() > 6000 {
		t.Fatalf("served = %d, want ~5000", f.srv.Served())
	}
	if !f.srv.VerifyOK() {
		t.Fatal("verification failed under load")
	}
}

func TestAntagonistDrivesReclaim(t *testing.T) {
	eng := sim.NewEngine()
	mm := kernel.NewMM(timing.Default(), mem.NewStore("host"), 0, 128)
	mm.SetSwap(kernel.NewBackingSwap(20*sim.Microsecond, 25*sim.Microsecond))
	core := sim.NewResource("antcore")
	k := kernel.NewKswapd(eng, mm, core)
	_ = k
	as := mm.NewAddressSpace(9)
	ant := NewAntagonist(eng, as, core, 7)
	ant.Keep = 120 // working set near capacity: free pages sit below the low watermark
	ant.Start()
	eng.RunUntil(50 * sim.Millisecond)
	ant.Stop()
	eng.Run()
	if ant.Allocated() < 100 {
		t.Fatalf("antagonist allocated only %d pages", ant.Allocated())
	}
	if mm.Stats().SwapOuts == 0 {
		t.Fatal("antagonist churn never drove reclaim")
	}
}
