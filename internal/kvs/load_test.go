package kvs

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/ycsb"
)

// Load-generator determinism tests: the trace record/replay pair must
// reproduce the live arrival stream op for op and picosecond for
// picosecond, and the temporal sources must keep the byte-identical-
// across-runs contract the suite depends on.

const loadHorizon = 200 * sim.Millisecond

// serveStats reduces a driven fixture to the values that fingerprint the
// exact (op, arrival-time) stream the server saw.
type serveStats struct {
	served uint64
	faults uint64
	p99    float64
	now    sim.Time
}

// driveLoad runs a fresh small fixture under the given load-gen builder.
func driveLoad(t *testing.T, build func(f *fix, gen *ycsb.Generator) *LoadGen) serveStats {
	t.Helper()
	f := newFix(t, 40, smallCfg(), nil)
	gen := ycsb.MustNewGenerator(ycsb.A, ycsb.Zipfian, 1024, 5)
	l := build(f, gen)
	l.Start()
	f.eng.RunUntil(loadHorizon)
	if !f.srv.VerifyOK() {
		t.Fatal("data corrupted")
	}
	return serveStats{served: f.srv.Served(), faults: f.srv.Faults(), p99: f.srv.P99(), now: f.eng.Now()}
}

func TestLoadGenTraceReplayMatchesLive(t *testing.T) {
	const rate, seed = 20_000.0, 9
	// Record more ops than the horizon admits: the replay must match the
	// live stream over the full window, not just run out early.
	trace := RecordYCSB(ycsb.MustNewGenerator(ycsb.A, ycsb.Zipfian, 1024, 5),
		workload.Poisson{RatePerSec: rate}, seed, 8192, "ycsb-A")
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	live := driveLoad(t, func(f *fix, gen *ycsb.Generator) *LoadGen {
		return NewLoadGen(f.eng, []*Server{f.srv}, gen, rate, seed)
	})
	replay := driveLoad(t, func(f *fix, gen *ycsb.Generator) *LoadGen {
		return NewLoadGenTrace(f.eng, []*Server{f.srv}, trace)
	})
	if live.served == 0 {
		t.Fatal("live run served nothing")
	}
	if live != replay {
		t.Fatalf("replay diverged from live:\n live   %+v\n replay %+v", live, replay)
	}
	// And a round trip through the binary encoding changes nothing.
	decoded, err := workload.DecodeTrace(trace.Encode())
	if err != nil {
		t.Fatal(err)
	}
	replay2 := driveLoad(t, func(f *fix, gen *ycsb.Generator) *LoadGen {
		return NewLoadGenTrace(f.eng, []*Server{f.srv}, decoded)
	})
	if replay2 != replay {
		t.Fatalf("decoded-trace replay diverged: %+v vs %+v", replay2, replay)
	}
}

func TestLoadGenTemporalDeterministic(t *testing.T) {
	src := func() workload.ArrivalSource {
		return workload.NewTemporal(workload.MustNewRateCurve(50*sim.Millisecond,
			workload.RatePoint{At: 0, RatePerSec: 5_000},
			workload.RatePoint{At: 25 * sim.Millisecond, RatePerSec: 40_000},
		)).WithBursts(workload.BurstSpec{
			MeanGap: 20 * sim.Millisecond, MeanLen: 3 * sim.Millisecond, Factor: 3,
		})
	}
	run := func() serveStats {
		return driveLoad(t, func(f *fix, gen *ycsb.Generator) *LoadGen {
			return NewLoadGenArrivals(f.eng, []*Server{f.srv}, gen, src(), 11)
		})
	}
	a, b := run(), run()
	if a.served == 0 {
		t.Fatal("temporal run served nothing")
	}
	if a != b {
		t.Fatalf("temporal load-gen not deterministic:\n first  %+v\n second %+v", a, b)
	}
}

func TestLoadGenLegacyPoissonUnchanged(t *testing.T) {
	// The ArrivalSource refactor must leave the legacy constructor's draw
	// stream untouched: Poisson.GapAt is Gap, and the time-base offset is
	// zero when Start happens at engine time zero. Drawing both ways from
	// the same seed pins it.
	p := workload.Poisson{RatePerSec: 60_000}
	r1, r2 := rng.New(3), rng.New(3)
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		g1 := p.Gap(r1)
		g2 := p.GapAt(r2, now)
		if g1 != g2 {
			t.Fatalf("draw %d: Gap %v != GapAt %v", i, g1, g2)
		}
		now += g1
	}
}
