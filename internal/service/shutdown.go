package service

import (
	"context"
	"net"
)

// Lifecycle: Run serves until the caller's context fires (cmd/cxlsimd
// wires SIGINT/SIGTERM into it), then Shutdown drains — reject new work,
// let in-flight runs finish inside a bounded window, hard-cancel whatever
// outlives it. The ordering matters: flip the draining flag before
// closing the queue so a request racing admission sees at worst one
// consistent refusal, and cancel the run base only after http.Server's
// drain so healthy runs are never interrupted by a clean shutdown.

// Run serves on cfg.Addr until ctx is done, then drains gracefully. It
// returns nil after a clean drain, the drain context's error when
// in-flight work exceeded DrainTimeout, or the listener error.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.cfg.Log.Printf("listening on %s (workers=%d, slots=%d, queue=%d, cache=%dMiB)",
		ln.Addr(), s.cfg.Workers, s.cfg.MaxConcurrent, s.cfg.QueueDepth, s.cfg.CacheBytes>>20)
	errc := make(chan error, 1)
	go func() { errc <- s.http.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	return s.Shutdown()
}

// Shutdown drains the daemon: new work is rejected (healthz flips to 503,
// queued waiters fail fast with 503), in-flight runs get up to
// DrainTimeout to finish, and anything still running after that is
// hard-cancelled through the run contexts.
func (s *Server) Shutdown() error {
	s.cfg.Log.Printf("draining (timeout %s)", s.cfg.DrainTimeout)
	s.draining.Store(true)
	s.queue.close()
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := s.http.Shutdown(ctx)
	s.cancelBase()
	if err != nil {
		s.cfg.Log.Printf("drain timeout exceeded: %v", err)
		return err
	}
	s.cfg.Log.Printf("drained cleanly")
	return nil
}
