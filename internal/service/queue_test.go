package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestQueueBounds: slots admit immediately, the waiting room admits up to
// its bound, and the next caller is rejected with errQueueFull.
func TestQueueBounds(t *testing.T) {
	q := newQueue(1, 1)
	if err := q.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if got := q.inFlight(); got != 1 {
		t.Fatalf("inFlight = %d, want 1", got)
	}

	// Second caller waits (slot busy, waiting room has space).
	waited := make(chan error, 1)
	go func() {
		waited <- q.acquire(context.Background())
	}()
	deadline := time.Now().Add(2 * time.Second)
	for q.depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// Third caller finds the waiting room full.
	if err := q.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("third acquire: %v, want errQueueFull", err)
	}

	// Releasing the slot admits the waiter.
	q.release()
	if err := <-waited; err != nil {
		t.Fatalf("waiter: %v", err)
	}
	q.release()
}

// TestQueueWaiterCancellation: a waiter whose context ends leaves the
// waiting room.
func TestQueueWaiterCancellation(t *testing.T) {
	q := newQueue(1, 4)
	if err := q.acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := q.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v, want context.Canceled", err)
	}
	if got := q.depth(); got != 0 {
		t.Fatalf("depth after cancelled wait = %d, want 0", got)
	}
	q.release()
}

// TestQueueClose: close rejects new acquires and wakes waiters with
// errDraining while held slots release normally.
func TestQueueClose(t *testing.T) {
	q := newQueue(1, 4)
	if err := q.acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- q.acquire(context.Background())
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for q.depth() != 3 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never registered")
		}
		time.Sleep(time.Millisecond)
	}
	q.close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, errDraining) {
			t.Fatalf("waiter after close: %v, want errDraining", err)
		}
	}
	if err := q.acquire(context.Background()); !errors.Is(err, errDraining) {
		t.Fatalf("acquire after close: %v, want errDraining", err)
	}
	q.release() // the held slot still releases without panicking
}
