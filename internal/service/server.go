// Package service is the simulator-as-a-service layer: a long-running
// HTTP/JSON daemon (cmd/cxlsimd) that serves the paper's experiment
// sections, ad-hoc §V microbenchmark jobs and the full comparison report
// on top of the shared-nothing job runner.
//
// Three properties shape the design:
//
//   - determinism: the runner renders byte-identical output per
//     (config, seed) for any worker count, so rendered responses are pure
//     functions of their canonical request key — a size-bounded LRU
//     caches them and concurrent identical requests coalesce onto one
//     simulation run;
//   - backpressure: a bounded admission queue caps concurrent runs and
//     waiting requests; excess load is shed at the front door with
//     429 + Retry-After instead of unbounded goroutines;
//   - bounded lifetimes: every run carries a deadline plumbed into
//     runner.Run as real cancellation, and shutdown drains in-flight work
//     within a configured timeout while rejecting new work.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	cxl2sim "repro"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/store"
)

// Config shapes a Server. Zero values take the noted defaults.
type Config struct {
	// Addr is the listen address (default ":8437").
	Addr string
	// Workers sizes the runner pool used by each admitted run
	// (default GOMAXPROCS). Output bytes do not depend on it.
	Workers int
	// MaxConcurrent bounds simultaneously executing runs (default 2 —
	// each run already fans its jobs out over Workers cores).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a run slot; beyond it
	// requests are rejected with 429 (default 8).
	QueueDepth int
	// CacheBytes bounds the result cache (default 64 MiB).
	CacheBytes int64
	// RequestTimeout is the per-run deadline, enforced as context
	// cancellation inside runner.Run (default 120s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration
	// DefaultReps is the repetition count used when a request omits one
	// (default 0: each endpoint keeps its CLI default — 1000 for
	// sections and measurements, 400 for the report).
	DefaultReps int
	// StoreDir, when set, layers a content-addressed durable result store
	// under the in-memory cache: rendered responses survive restarts and
	// are shared between replicas pointing at the same directory. Empty
	// keeps the cache memory-only.
	StoreDir string
	// StoreBytes bounds the durable store (default 256 MiB); GC evicts
	// least-recently-accessed entries beyond it.
	StoreBytes int64
	// Coordinator, when set, runs simulations across its registered dist
	// workers instead of in-process, and mounts the /dist/v1 control
	// endpoints. Byte output is identical either way.
	Coordinator *dist.Coordinator
	// Log receives request and lifecycle lines; nil logs to stderr.
	Log *log.Logger
}

func (c *Config) setDefaults() {
	if c.Addr == "" {
		c.Addr = ":8437"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 120 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Log == nil {
		c.Log = log.New(os.Stderr, "cxlsimd: ", log.LstdFlags)
	}
}

// Server is the daemon: admission queue, result cache, request
// coalescing, metrics and the HTTP handler tree.
type Server struct {
	cfg      Config
	queue    *queue
	cache    *resultCache
	store    *store.Store // nil when StoreDir is unset
	flight   *flightGroup
	metrics  *metrics
	mux      *http.ServeMux
	http     *http.Server
	draining atomic.Bool

	// base is the ancestor of every run context; cancelling it
	// hard-stops runs that outlive the drain window.
	base       context.Context
	cancelBase context.CancelFunc
}

// New builds a Server from cfg (zero values take defaults). It fails only
// when a configured durable store directory cannot be prepared.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   newQueue(cfg.MaxConcurrent, cfg.QueueDepth),
		cache:   newResultCache(cfg.CacheBytes),
		flight:  newFlightGroup(),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	if cfg.StoreDir != "" {
		// The canonical key version joins the on-disk path, so entries
		// written under an older key schema can never alias a new one.
		st, err := store.Open(store.Config{
			Dir:        cfg.StoreDir,
			MaxBytes:   cfg.StoreBytes,
			KeyVersion: experiments.CacheKeyVersion,
		})
		if err != nil {
			return nil, fmt.Errorf("service: durable store: %w", err)
		}
		s.store = st
	}
	s.base, s.cancelBase = context.WithCancel(context.Background())
	s.routes()
	s.http = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// MustNew is New for callers with a known-good config (tests, examples);
// it panics on error.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// runJobs is the execution seam every endpoint goes through: in-process
// via the runner by default, across the dist worker fleet when a
// coordinator is configured. Both paths derive per-job seeds from
// (rootSeed, job ID) and merge results in submission order, so the
// rendered bytes — and therefore the cache keys — are identical.
func (s *Server) runJobs(ctx context.Context, spec dist.Spec, jobs []cxl2sim.Job, rootSeed int64) []cxl2sim.JobResult {
	if s.cfg.Coordinator != nil {
		return s.cfg.Coordinator.Run(ctx, spec, jobs, cxl2sim.JobOptions{RootSeed: rootSeed, Context: ctx})
	}
	return cxl2sim.RunJobs(jobs, cxl2sim.JobOptions{
		Workers: s.cfg.Workers, RootSeed: rootSeed, Context: ctx,
	})
}

// cacheSnapshot merges both cache tiers into one stats view.
func (s *Server) cacheSnapshot() cacheStats {
	cs := s.cache.snapshot()
	if s.store != nil {
		ds := s.store.Snapshot()
		cs.DiskHits, cs.DiskMisses, cs.DiskPuts = ds.Hits, ds.Misses, ds.Puts
		cs.DiskEvictions, cs.DiskCorrupt = ds.Evictions, ds.Corrupt
		cs.DiskEntries, cs.DiskBytes = ds.Entries, ds.Bytes
	}
	return cs
}

// Handler returns the full handler tree (request accounting included) —
// the httptest entry point.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		s.mux.ServeHTTP(rec, r)
		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		s.metrics.observeRequest(rec.code)
	})
}

// writeJSON renders v with a trailing newline. Encoding of the service's
// own response types cannot fail; a broken client connection is ignored
// like any other write error at this layer.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ListenAndServe runs the daemon until Shutdown or a listener error.
func (s *Server) ListenAndServe() error { return s.http.ListenAndServe() }
