package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strconv"
	"time"

	cxl2sim "repro"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/store"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /v1/sections", s.handleSectionsList)
	s.mux.HandleFunc("POST /v1/sections/{name}", s.handleSectionRun)
	s.mux.HandleFunc("POST /v1/measure", s.handleMeasure)
	s.mux.HandleFunc("GET /v1/report", s.handleReport)
	if s.cfg.Coordinator != nil {
		s.cfg.Coordinator.Routes(s.mux)
	}
}

// httpError carries a specific status code out of a run function.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// runCached is the shared path of every simulation endpoint: serve from
// the result cache when possible, otherwise coalesce concurrent identical
// requests onto one leader, admit the leader through the bounded queue
// (shedding load with 429 + Retry-After when the waiting room is full),
// execute under the per-request deadline, and store the rendered bytes.
//
// The leader's run context derives from the server's base context — not
// the leader's connection — because a finished result benefits every
// coalesced follower and all future cache hits; it stays bounded by
// RequestTimeout and is hard-cancelled if shutdown outlives the drain
// window. Admission waiting, by contrast, does watch the client: a caller
// that hangs up while queued frees its place immediately.
func (s *Server) runCached(w http.ResponseWriter, r *http.Request, key, label string,
	run func(ctx context.Context) (cached, error)) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if resp, ok := s.cache.get(key); ok {
		s.serveCached(w, resp, "hit-mem")
		return
	}
	// Memory missed; the durable store may still have the bytes from a
	// previous process (or a sibling replica on the same directory). A disk
	// hit is promoted into memory so the next request is a hit-mem.
	if s.store != nil {
		if e, ok := s.store.Get(key); ok {
			resp := cached{key: e.Key, body: e.Body, contentType: e.ContentType, status: e.Status}
			s.cache.put(resp)
			s.serveCached(w, resp, "hit-disk")
			return
		}
	}
	resp, err, leader := s.flight.do(key, r.Context().Done(), func() (cached, error) {
		if err := s.queue.acquire(r.Context()); err != nil {
			return cached{}, err
		}
		defer s.queue.release()
		ctx, cancel := context.WithTimeout(s.base, s.cfg.RequestTimeout)
		defer cancel()
		start := time.Now()
		resp, err := run(ctx)
		s.metrics.observeSection(label, time.Since(start))
		if err != nil {
			return cached{}, err
		}
		resp.key = key
		if resp.status == 0 {
			resp.status = http.StatusOK
		}
		s.cache.put(resp)
		if s.store != nil {
			_ = s.store.Put(store.Entry{
				Key: resp.key, Body: resp.body,
				ContentType: resp.contentType, Status: resp.status,
			})
		}
		return resp, nil
	})
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	source := "coalesced"
	if leader {
		source = "miss"
	}
	s.serveCached(w, resp, source)
}

// serveCached writes a stored response with cache diagnostics.
func (s *Server) serveCached(w http.ResponseWriter, resp cached, source string) {
	h := w.Header()
	h.Set("Content-Type", resp.contentType)
	h.Set("X-Cache", source)
	h.Set("X-Cache-Key", keyHash(resp.key))
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// writeRunError maps run/admission failures onto HTTP statuses.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	var herr *httpError
	switch {
	case errors.As(err, &herr):
		writeError(w, herr.status, "%s", herr.msg)
	case errors.Is(err, errQueueFull):
		// Back off by the estimated drain time of the queue ahead of the
		// caller, not its length: a one-deep queue of minute-long report
		// runs needs a far longer retry than ten quick section runs.
		w.Header().Set("Retry-After", strconv.Itoa(s.metrics.retryAfterSeconds(s.queue.depth())))
		writeError(w, http.StatusTooManyRequests,
			"admission queue full (%d waiting, %d in flight); retry later",
			s.queue.depth(), s.queue.inFlight())
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, errFollowerGone):
		// The client stopped waiting while coalesced; nothing useful can
		// be delivered. 499 is the de-facto "client closed request".
		w.WriteHeader(499)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "run exceeded the %s request deadline",
			s.cfg.RequestTimeout)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "run cancelled by shutdown")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// ---- health + metrics ------------------------------------------------

type healthzResponse struct {
	Status       string     `json:"status"`
	QueueDepth   int        `json:"queue_depth"`
	InFlight     int        `json:"in_flight"`
	Cache        cacheStats `json:"cache"`
	CacheHitRate float64    `json:"cache_hit_rate"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cs := s.cacheSnapshot()
	resp := healthzResponse{
		Status:       "ok",
		QueueDepth:   s.queue.depth(),
		InFlight:     s.queue.inFlight(),
		Cache:        cs,
		CacheHitRate: cs.hitRate(),
	}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.queue, s.cacheSnapshot(), s.store != nil,
		s.flight.waiters(), s.cfg.Coordinator, s.draining.Load())
}

// handleVersion reports the binary's build and compatibility info: the
// canonical cache-key schema and the dist protocol token a mixed-version
// fleet is refused by.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	mode := "standalone"
	if s.cfg.Coordinator != nil {
		mode = "coordinator"
	}
	writeJSON(w, http.StatusOK, dist.Build(mode))
}

// ---- GET /v1/sections ------------------------------------------------

type sectionInfo struct {
	Name string `json:"name"`
	Jobs int    `json:"jobs"`
}

func (s *Server) handleSectionsList(w http.ResponseWriter, r *http.Request) {
	secs := cxl2sim.ExperimentSections(s.cfg.DefaultReps)
	infos := make([]sectionInfo, 0, len(secs))
	for _, sec := range secs {
		infos = append(infos, sectionInfo{Name: sec.Name, Jobs: len(sec.Jobs)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"sections": infos})
}

// ---- POST /v1/sections/{name} ----------------------------------------

type sectionRequest struct {
	// Reps tunes the repetition count (0 keeps the paper's defaults).
	Reps int `json:"reps"`
	// Seed roots the per-job seed derivation (0 = the default root seed).
	Seed int64 `json:"seed"`
	// Format selects "text" (the cxlbench rendering, default) or "json"
	// (the section's typed rows).
	Format string `json:"format"`
	// Trace is a base64-encoded workload trace (the versioned binary
	// format) to replay instead of generating the request stream. Only the
	// "infer" section supports replay; the trace's content hash joins the
	// cache key, so distinct streams never alias.
	Trace string `json:"trace"`
}

func (s *Server) handleSectionRun(w http.ResponseWriter, r *http.Request) {
	var req sectionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Reps == 0 {
		req.Reps = s.cfg.DefaultReps
	}
	if req.Reps < 0 {
		writeError(w, http.StatusBadRequest, "reps must be >= 0")
		return
	}
	if req.Seed == 0 {
		req.Seed = cxl2sim.DefaultRootSeed
	}
	if req.Format == "" {
		req.Format = "text"
	}
	if req.Format != "text" && req.Format != "json" {
		writeError(w, http.StatusBadRequest, "format must be \"text\" or \"json\", got %q", req.Format)
		return
	}
	name := r.PathValue("name")
	secs := cxl2sim.ExperimentSections(req.Reps)
	sec, ok := cxl2sim.ExperimentSectionByName(secs, name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown section %q (have %s)", name, sectionNames(secs))
		return
	}

	key := experiments.SectionKey(name, req.Reps, req.Seed, req.Format)
	if req.Trace != "" {
		if name != "infer" {
			writeError(w, http.StatusBadRequest, "section %q does not support trace replay (only \"infer\")", name)
			return
		}
		raw, err := base64.StdEncoding.DecodeString(req.Trace)
		if err != nil {
			writeError(w, http.StatusBadRequest, "trace is not valid base64: %v", err)
			return
		}
		t, err := cxl2sim.DecodeWorkloadTrace(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := t.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		for i, rec := range t.Requests {
			if rec.Prompt == 0 || rec.Decode == 0 {
				writeError(w, http.StatusBadRequest, "trace record %d has empty prompt/decode", i)
				return
			}
		}
		sec = cxl2sim.InferSectionTrace(req.Reps, t)
		key = cxl2sim.SectionTraceKey(name, req.Reps, req.Seed, req.Format, t)
	}
	spec := dist.Spec{Kind: "section", Section: name, Reps: req.Reps, TraceB64: req.Trace}
	s.runCached(w, r, key, "section/"+name, func(ctx context.Context) (cached, error) {
		results := s.runJobs(ctx, spec, sec.Jobs, req.Seed)
		if err := s.checkRun(ctx, results); err != nil {
			return cached{}, err
		}
		if req.Format == "json" {
			body, err := json.MarshalIndent(map[string]any{
				"section": name,
				"reps":    req.Reps,
				"seed":    req.Seed,
				"rows":    flattenRows(results),
			}, "", "  ")
			if err != nil {
				return cached{}, fmt.Errorf("marshal rows: %w", err)
			}
			return cached{body: append(body, '\n'), contentType: "application/json"}, nil
		}
		var buf bytes.Buffer
		if err := sec.Render(&buf, results); err != nil {
			return cached{}, err
		}
		return cached{body: buf.Bytes(), contentType: "text/plain; charset=utf-8"}, nil
	})
}

// checkRun folds a finished run into the metrics and converts failures
// into errors the status mapper understands.
func (s *Server) checkRun(ctx context.Context, results []cxl2sim.JobResult) error {
	s.metrics.observeJobs(results)
	if n := cxl2sim.CancelledJobCount(results); n > 0 {
		return fmt.Errorf("cancelled after %d/%d jobs: %w", len(results)-n, len(results), ctx.Err())
	}
	return cxl2sim.FirstJobError(results)
}

func sectionNames(secs []cxl2sim.ExperimentSection) string {
	names := make([]string, len(secs))
	for i, sec := range secs {
		names[i] = sec.Name
	}
	sort.Strings(names)
	return fmt.Sprint(names)
}

// flattenRows concatenates the per-job row fragments ([]T per job) into
// one flat slice for JSON rendering, preserving job order.
func flattenRows(results []cxl2sim.JobResult) []any {
	rows := []any{}
	for _, res := range results {
		v := reflect.ValueOf(res.Value)
		if !v.IsValid() || v.Kind() != reflect.Slice {
			continue
		}
		for i := 0; i < v.Len(); i++ {
			rows = append(rows, v.Index(i).Interface())
		}
	}
	return rows
}

// decodeBody parses an optional JSON request body; unknown fields are
// rejected so typos fail loudly instead of silently keying a default run.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return false
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return true
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decode body: %v", err)
		return false
	}
	return true
}

// ---- POST /v1/measure ------------------------------------------------

type measureConfig struct {
	// DeviceType is "type2" (default) or "type3".
	DeviceType string `json:"device_type"`
	LLCBytes   int    `json:"llc_bytes"`
	LLCWays    int    `json:"llc_ways"`
	Cores      int    `json:"cores"`
	SNC        bool   `json:"snc"`
}

type measureRequest struct {
	// Kind is "d2h", "d2d" or "h2d".
	Kind string `json:"kind"`
	// Op is the access: NC-P / NC-rd / NC-wr / CO-rd / CO-wr / CS-rd for
	// d2h and d2d, ld / nt-ld / st / nt-st for h2d.
	Op string `json:"op"`
	// Place primes the caches: cold (default), LLC-1, HMC-1 or DMC-1.
	Place string `json:"place"`
	// Reps / Burst follow the §V methodology (0 = 1000 reps, 16 bursts).
	Reps  int `json:"reps"`
	Burst int `json:"burst"`
	// Seed roots the job's seed derivation (0 = the default root seed).
	Seed   int64         `json:"seed"`
	Config measureConfig `json:"config"`
}

// The op and placement vocabularies live in the root package (names.go)
// so the service, the dist workers and the CLI parse the §V names
// identically — a distributed measure job must build the same job ID on
// every process.
var (
	d2hOps     = cxl2sim.D2HOpNames
	hostOps    = cxl2sim.HostOpNames
	placements = cxl2sim.PlacementNames
)

type measureResponse struct {
	Kind         string  `json:"kind"`
	Op           string  `json:"op"`
	Place        string  `json:"place"`
	Reps         int     `json:"reps"`
	Burst        int     `json:"burst"`
	Seed         int64   `json:"seed"`
	MedianNs     float64 `json:"median_ns"`
	StdDevNs     float64 `json:"stddev_ns"`
	BandwidthGBs float64 `json:"bandwidth_gbs"`
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	var req measureRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Place == "" {
		req.Place = "cold"
	}
	place, ok := placements[req.Place]
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown place %q (cold, LLC-1, HMC-1, DMC-1)", req.Place)
		return
	}
	if req.Reps < 0 || req.Burst < 0 {
		writeError(w, http.StatusBadRequest, "reps and burst must be >= 0")
		return
	}
	if req.Seed == 0 {
		req.Seed = cxl2sim.DefaultRootSeed
	}
	cfg, err := req.Config.toConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := cxl2sim.MeasureSpec{Reps: req.Reps, Burst: req.Burst, Place: place}
	id := fmt.Sprintf("measure/%s/%s", req.Kind, req.Op)

	var job cxl2sim.Job
	switch req.Kind {
	case "d2h", "d2d":
		op, ok := d2hOps[req.Op]
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown %s op %q (NC-P, NC-rd, NC-wr, CO-rd, CO-wr, CS-rd)", req.Kind, req.Op)
			return
		}
		if req.Kind == "d2h" {
			job = cxl2sim.MeasureD2HJob(id, cfg, op, spec)
		} else {
			job = cxl2sim.MeasureD2DJob(id, cfg, op, spec)
		}
	case "h2d":
		op, ok := hostOps[req.Op]
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown h2d op %q (ld, nt-ld, st, nt-st)", req.Op)
			return
		}
		job = cxl2sim.MeasureH2DJob(id, cfg, op, spec)
	default:
		writeError(w, http.StatusBadRequest, "unknown kind %q (d2h, d2d, h2d)", req.Kind)
		return
	}

	key := fmt.Sprintf("v1/measure|%s|%s|%s|reps=%d|burst=%d|seed=%d|%s",
		req.Kind, req.Op, req.Place, req.Reps, req.Burst, req.Seed, cfg.CanonicalKey())
	dspec := dist.Spec{Kind: "measure", Measure: &dist.MeasureParams{
		MeasureKind: req.Kind, Op: req.Op, Place: req.Place,
		Reps: req.Reps, Burst: req.Burst,
		DeviceType: int(cfg.DeviceType), LLCBytes: cfg.LLCBytes,
		LLCWays: cfg.LLCWays, Cores: cfg.Cores, SNC: cfg.SNC,
	}}
	s.runCached(w, r, key, "measure", func(ctx context.Context) (cached, error) {
		results := s.runJobs(ctx, dspec, []cxl2sim.Job{job}, req.Seed)
		if err := s.checkRun(ctx, results); err != nil {
			if results[0].Err != nil && !results[0].Panicked && !results[0].Cancelled {
				// A plain job error on this endpoint is a bad measurement
				// request (e.g. DMC-1 priming on a d2h access), not a
				// server fault.
				return cached{}, httpErrorf(http.StatusBadRequest, "%v", results[0].Err)
			}
			return cached{}, err
		}
		m, ok := results[0].Value.(cxl2sim.Measurement)
		if !ok {
			return cached{}, fmt.Errorf("unexpected job result %T", results[0].Value)
		}
		body, err := json.MarshalIndent(measureResponse{
			Kind: req.Kind, Op: req.Op, Place: req.Place,
			Reps: m.Reps, Burst: m.Burst, Seed: req.Seed,
			MedianNs: m.MedianNs, StdDevNs: m.StdDevNs, BandwidthGBs: m.BandwidthGBs,
		}, "", "  ")
		if err != nil {
			return cached{}, err
		}
		return cached{body: append(body, '\n'), contentType: "application/json"}, nil
	})
}

func (c measureConfig) toConfig() (cxl2sim.Config, error) {
	cfg := cxl2sim.Config{
		LLCBytes: c.LLCBytes, LLCWays: c.LLCWays, Cores: c.Cores, SNC: c.SNC,
	}
	switch c.DeviceType {
	case "", "type2":
		// default
	case "type3":
		cfg.DeviceType = cxl2sim.Type3
	default:
		return cfg, fmt.Errorf("unknown device_type %q (type2, type3)", c.DeviceType)
	}
	return cfg, nil
}

// ---- GET /v1/report --------------------------------------------------

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	reps := 400 // cmd/report's default, so the cached bytes match its output
	if v := q.Get("reps"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad reps %q", v)
			return
		}
		reps = n
	}
	full := false
	if v := q.Get("full"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad full %q", v)
			return
		}
		full = b
	}
	seed := int64(cxl2sim.DefaultRootSeed)
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
		if n == 0 {
			n = cxl2sim.DefaultRootSeed
		}
		seed = n
	}

	key := experiments.ReportKey(reps, full, seed)
	opts := cxl2sim.ReportOptions{Reps: reps, Full: full}
	spec := dist.Spec{Kind: "report", Reps: reps, Full: full}
	s.runCached(w, r, key, "report", func(ctx context.Context) (cached, error) {
		// Enumeration and rendering stay local; only execution is
		// distributable. The job list a worker re-derives from the spec is
		// identical to this one, so results merge back by index.
		results := s.runJobs(ctx, spec, cxl2sim.ReportJobs(opts), seed)
		if cerr := s.checkRun(ctx, results); cerr != nil {
			return cached{}, cerr
		}
		var buf bytes.Buffer
		if err := cxl2sim.RenderReport(&buf, opts, results); err != nil {
			return cached{}, err
		}
		return cached{body: buf.Bytes(), contentType: "text/markdown; charset=utf-8"}, nil
	})
}
