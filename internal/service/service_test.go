package service

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	cxl2sim "repro"
	"repro/internal/dist"
)

// testReps keeps runs fast while still exercising the real experiment
// jobs end to end.
const testReps = 25

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := MustNew(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, body
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, b
}

// TestHealthzAndSectionsList: the discovery endpoints answer without
// touching the simulator.
func TestHealthzAndSectionsList(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	var hz healthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if hz.Status != "ok" || hz.QueueDepth != 0 || hz.InFlight != 0 {
		t.Fatalf("healthz = %+v", hz)
	}

	resp, body = get(t, ts.URL+"/v1/sections")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sections: %d %s", resp.StatusCode, body)
	}
	var list struct {
		Sections []sectionInfo `json:"sections"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("sections decode: %v", err)
	}
	want := map[string]bool{"table3": true, "fig3": true, "fig4": true,
		"fig5": true, "fig6": true, "wqsweep": true, "infer": true,
		"workload": true, "cluster": true}
	if len(list.Sections) != len(want) {
		t.Fatalf("%d sections, want %d: %s", len(list.Sections), len(want), body)
	}
	for _, sec := range list.Sections {
		if !want[sec.Name] {
			t.Fatalf("unexpected section %q", sec.Name)
		}
		if sec.Jobs <= 0 {
			t.Fatalf("section %q reports %d jobs", sec.Name, sec.Jobs)
		}
	}
}

// TestSectionDeterminismAndCacheHit — the core serving guarantee: two
// identical section requests return byte-identical bodies, the second
// served from the cache; the bytes also match an in-process serial render
// and are independent of the server's worker count.
func TestSectionDeterminismAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})

	body := fmt.Sprintf(`{"reps":%d,"seed":7}`, testReps)
	resp1, b1 := post(t, ts.URL+"/v1/sections/fig3", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}

	resp2, b2 := post(t, ts.URL+"/v1/sections/fig3", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second: %d %s", resp2.StatusCode, b2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit-mem" {
		t.Fatalf("second X-Cache = %q, want hit-mem", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("bodies differ:\n%s\n----\n%s", b1, b2)
	}
	if cs := s.cache.snapshot(); cs.Hits < 1 {
		t.Fatalf("cache recorded no hit: %+v", cs)
	}

	// The served bytes match a serial in-process render of the same
	// (section, reps, seed) — the runner's determinism, end to end.
	secs := cxl2sim.ExperimentSections(testReps)
	sec, _ := cxl2sim.ExperimentSectionByName(secs, "fig3")
	results := cxl2sim.RunJobs(sec.Jobs, cxl2sim.JobOptions{Workers: 1, RootSeed: 7})
	var ref bytes.Buffer
	if err := sec.Render(&ref, results); err != nil {
		t.Fatalf("reference render: %v", err)
	}
	if !bytes.Equal(b1, ref.Bytes()) {
		t.Fatalf("served bytes differ from serial render:\n%s\n----\n%s", b1, ref.Bytes())
	}

	// A single-worker server serves the same bytes for the same request.
	_, ts1 := newTestServer(t, Config{Workers: 1})
	resp3, b3 := post(t, ts1.URL+"/v1/sections/fig3", body)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("workers=1: %d %s", resp3.StatusCode, b3)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("bytes depend on the server's worker count")
	}
}

// TestInferSectionCacheHit extends the determinism guarantee to the
// LLM-serving section: MISS then HIT with byte-identical bodies, both
// matching an in-process serial render of the same (reps, seed).
func TestInferSectionCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	body := fmt.Sprintf(`{"reps":%d,"seed":7}`, testReps)
	resp1, b1 := post(t, ts.URL+"/v1/sections/infer", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	resp2, b2 := post(t, ts.URL+"/v1/sections/infer", body)
	if got := resp2.Header.Get("X-Cache"); got != "hit-mem" {
		t.Fatalf("second X-Cache = %q, want hit-mem", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached body differs:\n%s\n----\n%s", b1, b2)
	}

	secs := cxl2sim.ExperimentSections(testReps)
	sec, ok := cxl2sim.ExperimentSectionByName(secs, "infer")
	if !ok {
		t.Fatal("infer section missing from registry")
	}
	results := cxl2sim.RunJobs(sec.Jobs, cxl2sim.JobOptions{Workers: 1, RootSeed: 7})
	var ref bytes.Buffer
	if err := sec.Render(&ref, results); err != nil {
		t.Fatalf("reference render: %v", err)
	}
	if !bytes.Equal(b1, ref.Bytes()) {
		t.Fatalf("served bytes differ from serial render:\n%s\n----\n%s", b1, ref.Bytes())
	}
}

// TestInferSectionTraceReplay: replaying the trace recorded from (reps,
// seed) returns exactly the bytes a live run of the same (reps, seed)
// produces, under a distinct cache key (the trace hash joins the key), and
// malformed or misdirected traces fail with 400s before admission.
func TestInferSectionTraceReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	live := fmt.Sprintf(`{"reps":%d,"seed":7}`, testReps)
	respLive, bLive := post(t, ts.URL+"/v1/sections/infer", live)
	if respLive.StatusCode != http.StatusOK {
		t.Fatalf("live: %d %s", respLive.StatusCode, bLive)
	}

	tr := cxl2sim.RecordInferTrace(7, cxl2sim.InferConfig{Reps: testReps})
	enc := base64.StdEncoding.EncodeToString(tr.Encode())
	replay := fmt.Sprintf(`{"reps":%d,"seed":7,"trace":%q}`, testReps, enc)
	resp1, b1 := post(t, ts.URL+"/v1/sections/infer", replay)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("replay after live X-Cache = %q, want miss (trace key is distinct)", got)
	}
	if !bytes.Equal(b1, bLive) {
		t.Fatalf("replayed bytes differ from live generation:\n%s\n----\n%s", b1, bLive)
	}
	resp2, b2 := post(t, ts.URL+"/v1/sections/infer", replay)
	if got := resp2.Header.Get("X-Cache"); got != "hit-mem" {
		t.Fatalf("second replay X-Cache = %q, want hit-mem", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached replay body differs")
	}

	cases := []struct {
		name, url, body string
	}{
		{"non-infer section", "/v1/sections/fig3", fmt.Sprintf(`{"trace":%q}`, enc)},
		{"bad base64", "/v1/sections/infer", `{"trace":"!!!"}`},
		{"bad trace bytes", "/v1/sections/infer",
			fmt.Sprintf(`{"trace":%q}`, base64.StdEncoding.EncodeToString([]byte("notatrace")))},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+c.url, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", c.name, resp.StatusCode, body)
		}
	}
}

// TestSectionJSONFormat: format=json returns the typed rows, cached under
// a distinct key from the text rendering.
func TestSectionJSONFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := fmt.Sprintf(`{"reps":%d,"format":"json"}`, testReps)
	resp, body := post(t, ts.URL+"/v1/sections/table3", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json run: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Section string            `json:"section"`
		Rows    []json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Section != "table3" || len(out.Rows) == 0 {
		t.Fatalf("section=%q rows=%d", out.Section, len(out.Rows))
	}

	respText, _ := post(t, ts.URL+"/v1/sections/table3", fmt.Sprintf(`{"reps":%d}`, testReps))
	if got := respText.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("text after json X-Cache = %q, want miss (distinct key)", got)
	}
}

// TestSectionErrors: bad requests fail before admission with helpful
// statuses.
func TestSectionErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"unknown section", "/v1/sections/fig99", "{}", http.StatusNotFound},
		{"bad format", "/v1/sections/fig3", `{"format":"yaml"}`, http.StatusBadRequest},
		{"unknown field", "/v1/sections/fig3", `{"repz":3}`, http.StatusBadRequest},
		{"negative reps", "/v1/sections/fig3", `{"reps":-1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+c.url, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: %d %s, want %d", c.name, resp.StatusCode, body, c.want)
		}
	}
}

// TestMeasureEndpoint: an ad-hoc D2H measurement runs, is cached, and is
// deterministic; invalid combinations are 400s.
func TestMeasureEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"kind":"d2h","op":"CS-rd","place":"LLC-1","reps":50,"burst":8,"seed":3}`
	resp, b1 := post(t, ts.URL+"/v1/measure", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: %d %s", resp.StatusCode, b1)
	}
	var m measureResponse
	if err := json.Unmarshal(b1, &m); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.MedianNs <= 0 || m.BandwidthGBs <= 0 || m.Reps != 50 || m.Burst != 8 {
		t.Fatalf("implausible measurement: %+v", m)
	}

	resp2, b2 := post(t, ts.URL+"/v1/measure", req)
	if got := resp2.Header.Get("X-Cache"); got != "hit-mem" {
		t.Fatalf("repeat X-Cache = %q, want hit-mem", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("measurement not deterministic across requests")
	}

	bad := []struct{ name, body string }{
		{"unknown kind", `{"kind":"x2h","op":"ld"}`},
		{"unknown op", `{"kind":"d2h","op":"mov"}`},
		{"unknown place", `{"kind":"d2h","op":"CS-rd","place":"L2-1"}`},
		{"bad device type", `{"kind":"h2d","op":"ld","config":{"device_type":"type9"}}`},
		{"place/kind mismatch", `{"kind":"d2h","op":"CS-rd","place":"DMC-1","reps":10}`},
	}
	for _, c := range bad {
		resp, body := post(t, ts.URL+"/v1/measure", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", c.name, resp.StatusCode, body)
		}
	}

	// A Type-3 measurement keys separately from the Type-2 default.
	resp3, _ := post(t, ts.URL+"/v1/measure",
		`{"kind":"h2d","op":"ld","reps":50,"burst":8,"config":{"device_type":"type3"}}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("type3 measure: %d", resp3.StatusCode)
	}
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("type3 X-Cache = %q, want miss", got)
	}
}

// TestReportMatchesSerialWriter: the /v1/report bytes equal
// WriteReportOpts run serially in-process — the same guarantee the CI
// smoke checks against cmd/report -serial.
func TestReportMatchesSerialWriter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	resp, got := get(t, ts.URL+"/v1/report?reps="+fmt.Sprint(testReps)+"&seed=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d %s", resp.StatusCode, got)
	}
	var ref bytes.Buffer
	if _, err := cxl2sim.WriteReportOpts(&ref, cxl2sim.ReportOptions{
		Reps: testReps, Workers: 1, RootSeed: 5,
	}); err != nil {
		t.Fatalf("reference report: %v", err)
	}
	if !bytes.Equal(got, ref.Bytes()) {
		t.Fatalf("report bytes differ from serial writer:\n%s\n----\n%s", got, ref.Bytes())
	}
}

// TestConcurrentFloodSheds429AndKeepsCacheSound: N parallel clients with
// distinct seeds against queue bound K < N. Some must be rejected with
// 429 + Retry-After, every success must be byte-identical to a later
// (cache-hit) repeat, and the cache must end up uncorrupted. The flood
// retries a few times because scheduling could, in principle, let every
// client through sequentially.
func TestConcurrentFloodSheds429AndKeepsCacheSound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxConcurrent: 1, QueueDepth: 1})

	const clients = 10
	// floodReps keeps one fig3 job busy for tens of milliseconds so ten
	// simultaneous clients reliably overrun the 1+1 admission bound; with
	// a cheap job the single worker can drain arrivals as fast as the
	// HTTP layer staggers them and nothing gets shed.
	const floodReps = 8000
	type outcome struct {
		seed   int
		status int
		retry  string
		body   []byte
	}
	flood := func(round int) []outcome {
		out := make([]outcome, clients)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				seed := round*clients + i + 1
				body := fmt.Sprintf(`{"reps":%d,"seed":%d}`, floodReps, seed)
				resp, err := http.Post(ts.URL+"/v1/sections/fig3", "application/json",
					strings.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				defer resp.Body.Close()
				b, _ := io.ReadAll(resp.Body)
				out[i] = outcome{seed: seed, status: resp.StatusCode,
					retry: resp.Header.Get("Retry-After"), body: b}
			}(i)
		}
		close(start)
		wg.Wait()
		return out
	}

	var shed []outcome
	for round := 0; round < 3 && len(shed) == 0; round++ {
		results := flood(round)
		ok := 0
		for _, o := range results {
			switch o.status {
			case http.StatusOK:
				ok++
				// Every accepted response must be reproducible from cache.
				resp, b := post(t, ts.URL+"/v1/sections/fig3",
					fmt.Sprintf(`{"reps":%d,"seed":%d}`, floodReps, o.seed))
				if resp.StatusCode != http.StatusOK || !bytes.Equal(b, o.body) {
					t.Fatalf("seed %d: repeat %d / bytes differ — cache corrupted",
						o.seed, resp.StatusCode)
				}
				if got := resp.Header.Get("X-Cache"); got != "hit-mem" {
					t.Fatalf("seed %d repeat X-Cache = %q, want hit-mem", o.seed, got)
				}
			case http.StatusTooManyRequests:
				if o.retry == "" {
					t.Fatalf("seed %d: 429 without Retry-After", o.seed)
				}
				shed = append(shed, o)
			default:
				t.Fatalf("seed %d: unexpected status %d: %s", o.seed, o.status, o.body)
			}
		}
		if ok == 0 {
			t.Fatal("no request succeeded during the flood")
		}
	}
	if len(shed) == 0 {
		t.Fatal("flood never produced a 429 despite queue bound 1+1 < 10 clients")
	}
}

// TestRequestDeadline504: a deadline far shorter than the run cancels the
// dispatch inside runner.Run and surfaces as 504.
func TestRequestDeadline504(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp, body := post(t, ts.URL+"/v1/sections/fig3", `{"reps":200}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d %s, want 504", resp.StatusCode, body)
	}
}

// TestDrainingRejectsNewWork: after Shutdown the daemon answers 503 on
// work and healthz endpoints.
func TestDrainingRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, _ := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/sections/fig3", `{"reps":10}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("section while draining: %d, want 503", resp.StatusCode)
	}
}

// TestMetricsExposition: the metrics page carries the documented gauges
// and reflects traffic.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/sections/table3", fmt.Sprintf(`{"reps":%d}`, testReps))
	post(t, ts.URL+"/v1/sections/table3", fmt.Sprintf(`{"reps":%d}`, testReps)) // hit
	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"cxlsimd_queue_depth 0",
		"cxlsimd_inflight_jobs 0",
		"cxlsimd_cache_hits_total 1",
		"cxlsimd_cache_misses_total 1",
		"cxlsimd_sim_events_total",
		"cxlsimd_requests_total{code=\"200\"}",
		"cxlsimd_section_latency_seconds_count{section=\"section/table3\"} 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestRetryAfterTracksRunEWMA: the 429 Retry-After header is derived from
// an EWMA of observed run wall time scaled by the queue depth, with a 1s
// floor — not from the queue depth alone.
func TestRetryAfterTracksRunEWMA(t *testing.T) {
	m := newMetrics()
	if got := m.retryAfterSeconds(0); got != 1 {
		t.Fatalf("no observations: retryAfter = %d, want the 1s floor", got)
	}
	m.observeSection("report", 5*time.Second)
	if got := m.retryAfterSeconds(0); got != 5 {
		t.Fatalf("after one 5s run: retryAfter(0 waiting) = %d, want 5", got)
	}
	if got := m.retryAfterSeconds(2); got != 15 {
		t.Fatalf("after one 5s run: retryAfter(2 waiting) = %d, want 15", got)
	}
	// The estimate follows the workload: a burst of instant runs decays it
	// (0.2 weight each), and the floor keeps the header at least 1.
	for i := 0; i < 40; i++ {
		m.observeSection("section/table3", 0)
	}
	if got := m.retryAfterSeconds(9); got != 1 {
		t.Fatalf("after decay: retryAfter(9 waiting) = %d, want the 1s floor", got)
	}

	fast := newMetrics()
	fast.observeSection("section/table3", 10*time.Millisecond)
	if got := fast.retryAfterSeconds(0); got != 1 {
		t.Fatalf("sub-second run: retryAfter = %d, want the 1s floor", got)
	}

	// Through the handler: a queue-full rejection must carry the
	// EWMA-derived header, rounded up to whole seconds.
	s := MustNew(Config{})
	s.metrics.observeSection("report", 2500*time.Millisecond)
	rec := httptest.NewRecorder()
	s.writeRunError(rec, errQueueFull)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("writeRunError(errQueueFull) status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\" (ceil of the 2.5s EWMA)", got)
	}
}

// TestDiskStoreHitSurvivesRestart: with a durable store configured, a
// response computed by one server process is served by a fresh process
// over the same directory as X-Cache: hit-disk — without re-running any
// jobs — and promoted into memory so the next request is hit-mem.
func TestDiskStoreHitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body := fmt.Sprintf(`{"reps":%d,"seed":11}`, testReps)

	_, ts1 := newTestServer(t, Config{StoreDir: dir})
	resp1, b1 := post(t, ts1.URL+"/v1/sections/fig3", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	ts1.Close()

	// "Restart": a brand-new server over the same store directory. Its
	// memory cache is empty, so only the durable tier can satisfy this.
	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	resp2, b2 := post(t, ts2.URL+"/v1/sections/fig3", body)
	if got := resp2.Header.Get("X-Cache"); got != "hit-disk" {
		t.Fatalf("post-restart X-Cache = %q, want hit-disk", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("disk-served bytes differ from the original render")
	}
	cs := s2.cacheSnapshot()
	if cs.DiskHits != 1 {
		t.Fatalf("disk hit not counted: %+v", cs)
	}
	// No simulation ran in the new process.
	s2.metrics.mu.Lock()
	jobs := s2.metrics.jobsRun
	s2.metrics.mu.Unlock()
	if jobs != 0 {
		t.Fatalf("restarted server ran %d jobs for a stored response", jobs)
	}

	// The disk hit was promoted: the next request hits memory.
	resp3, b3 := post(t, ts2.URL+"/v1/sections/fig3", body)
	if got := resp3.Header.Get("X-Cache"); got != "hit-mem" {
		t.Fatalf("promoted X-Cache = %q, want hit-mem", got)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("memory-promoted bytes differ")
	}
}

// TestDiskStoreMetricsExposed: /metrics and /healthz carry the disk-tier
// counters once a store is configured.
func TestDiskStoreMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir()})
	post(t, ts.URL+"/v1/sections/table3", fmt.Sprintf(`{"reps":%d}`, testReps))
	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"cxlsimd_store_hits_total 0",
		"cxlsimd_store_misses_total 1",
		"cxlsimd_store_puts_total 1",
		"cxlsimd_store_evictions_total 0",
		"cxlsimd_store_entries 1",
		"cxlsimd_flight_waiters 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	_, hz := get(t, ts.URL+"/healthz")
	var resp healthzResponse
	if err := json.Unmarshal(hz, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cache.DiskPuts != 1 || resp.Cache.DiskEntries != 1 {
		t.Fatalf("healthz disk stats: %+v", resp.Cache)
	}
}

// TestVersionEndpoint: GET /v1/version reports the cache-key schema and
// dist protocol token, with the serving mode.
func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/v1/version")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version: %d %s", resp.StatusCode, body)
	}
	var v struct {
		CacheKeyVersion string `json:"cache_key_version"`
		DistProtocol    string `json:"dist_protocol"`
		Mode            string `json:"mode"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.CacheKeyVersion != "v1" || v.DistProtocol == "" || v.Mode != "standalone" {
		t.Fatalf("version = %+v", v)
	}
}

// TestCoordinatorModeServesIdenticalBytes: a server in coordinator mode
// with two registered dist workers serves the same bytes a standalone
// server computes in-process — the distribution seam is invisible in the
// cache contract.
func TestCoordinatorModeServesIdenticalBytes(t *testing.T) {
	startWorker := func() string {
		w := dist.NewWorker(dist.WorkerConfig{Workers: 1, MaxConcurrent: 4})
		ws := httptest.NewServer(w.Handler())
		t.Cleanup(ws.Close)
		return strings.TrimPrefix(ws.URL, "http://")
	}
	coord := dist.NewCoordinator(dist.CoordinatorConfig{Workers: 1, StaleAfter: time.Hour})
	_, ts := newTestServer(t, Config{Coordinator: coord})
	for _, addr := range []string{startWorker(), startWorker()} {
		body, _ := json.Marshal(map[string]string{"addr": addr, "version": dist.ProtocolVersion()})
		resp, err := http.Post(ts.URL+"/dist/v1/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register: %d", resp.StatusCode)
		}
	}

	_, tsLocal := newTestServer(t, Config{})
	req := fmt.Sprintf(`{"reps":%d,"seed":9}`, testReps)
	respD, bD := post(t, ts.URL+"/v1/sections/fig3", req)
	respL, bL := post(t, tsLocal.URL+"/v1/sections/fig3", req)
	if respD.StatusCode != http.StatusOK || respL.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d", respD.StatusCode, respL.StatusCode)
	}
	if !bytes.Equal(bD, bL) {
		t.Fatal("coordinator-mode bytes differ from standalone")
	}
	if m := coord.Snapshot(); m.RemoteJobs == 0 {
		t.Fatalf("no jobs ran remotely: %+v", m)
	}

	// The fleet listing answers on the service mux, and /metrics carries
	// the dist gauges.
	_, workers := get(t, ts.URL+"/dist/v1/workers")
	if !strings.Contains(string(workers), `"live":true`) {
		t.Fatalf("workers listing: %s", workers)
	}
	_, metrics := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"cxlsimd_dist_workers_live 2",
		"cxlsimd_dist_remote_jobs_total",
		"cxlsimd_dist_local_fallbacks_total 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
