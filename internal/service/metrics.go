package service

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/runner"
)

// Service metrics: request counts by status code, per-section latency
// aggregates, and the runner's sim-event accounting rolled up across all
// served jobs. Everything renders to the Prometheus text exposition
// format in deterministic (sorted-label) order so two scrapes of an idle
// server produce identical bytes.

type sectionLatency struct {
	count   uint64
	seconds float64
}

type metrics struct {
	mu        sync.Mutex
	requests  map[int]uint64 // by HTTP status code
	sections  map[string]sectionLatency
	simEvents uint64
	simWall   time.Duration
	jobsRun   uint64
	jobsErred uint64
	// runEWMA tracks the typical run wall time in seconds (exponentially
	// weighted, runEWMAAlpha per observation); 0 until the first run
	// completes. Retry-After on shed requests is derived from it.
	runEWMA float64
}

// runEWMAAlpha weights the newest run at 20%: heavy enough to follow a
// shift in workload mix within a few runs, light enough that one
// cache-cold outlier does not dominate the estimate.
const runEWMAAlpha = 0.2

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[int]uint64),
		sections: make(map[string]sectionLatency),
	}
}

// observeRequest counts one finished HTTP request.
func (m *metrics) observeRequest(code int) {
	m.mu.Lock()
	m.requests[code]++
	m.mu.Unlock()
}

// observeSection records one section/report/measure run's wall time under
// its metric label.
func (m *metrics) observeSection(name string, d time.Duration) {
	m.mu.Lock()
	s := m.sections[name]
	s.count++
	s.seconds += d.Seconds()
	m.sections[name] = s
	if m.runEWMA == 0 {
		m.runEWMA = d.Seconds()
	} else {
		m.runEWMA = runEWMAAlpha*d.Seconds() + (1-runEWMAAlpha)*m.runEWMA
	}
	m.mu.Unlock()
}

// retryAfterSeconds estimates how long a shed request should back off:
// the queue must drain `waiting` runs plus the caller's own, each taking
// about one EWMA run time. Before any run has completed (EWMA still 0)
// or for sub-second runs the floor of 1s applies — Retry-After is an
// integer header and 0 would invite an immediate stampede.
func (m *metrics) retryAfterSeconds(waiting int) int {
	m.mu.Lock()
	e := m.runEWMA
	m.mu.Unlock()
	secs := int(math.Ceil(e * float64(waiting+1)))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// observeJobs rolls a finished run's per-job wall/event stats into the
// server totals.
func (m *metrics) observeJobs(results []runner.Result) {
	var events uint64
	var wall time.Duration
	var erred uint64
	for _, r := range results {
		events += r.Events
		wall += r.Wall
		if r.Err != nil {
			erred++
		}
	}
	m.mu.Lock()
	m.simEvents += events
	m.simWall += wall
	m.jobsRun += uint64(len(results))
	m.jobsErred += erred
	m.mu.Unlock()
}

// write renders the exposition text. queue/cache/store/fleet state is
// read at scrape time so gauges are always current.
func (m *metrics) write(w io.Writer, q *queue, cs cacheStats, hasStore bool,
	flightWaiters int, coord *dist.Coordinator, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	g := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	g("cxlsimd_queue_depth", "Requests waiting for a run slot.", q.depth())
	g("cxlsimd_inflight_jobs", "Run slots currently held.", q.inFlight())
	g("cxlsimd_flight_waiters", "Requests currently coalesced behind in-flight leaders.",
		flightWaiters)
	drain := 0
	if draining {
		drain = 1
	}
	g("cxlsimd_draining", "1 once graceful shutdown has begun.", drain)

	g("cxlsimd_cache_hits_total", "In-memory result-cache hits.", cs.Hits)
	g("cxlsimd_cache_misses_total", "In-memory result-cache misses.", cs.Misses)
	g("cxlsimd_cache_evictions_total", "Result-cache LRU evictions.", cs.Evictions)
	g("cxlsimd_cache_entries", "Result-cache resident entries.", cs.Entries)
	g("cxlsimd_cache_bytes", "Result-cache resident bytes.", cs.Bytes)
	g("cxlsimd_cache_hit_rate", "Served-from-cache (either tier) over lookups since start.",
		fmt.Sprintf("%.4f", cs.hitRate()))
	if hasStore {
		g("cxlsimd_store_hits_total", "Durable-store hits (memory misses rescued from disk).",
			cs.DiskHits)
		g("cxlsimd_store_misses_total", "Durable-store misses.", cs.DiskMisses)
		g("cxlsimd_store_puts_total", "Entries written to the durable store.", cs.DiskPuts)
		g("cxlsimd_store_evictions_total", "Durable-store GC evictions.", cs.DiskEvictions)
		g("cxlsimd_store_corrupt_total", "Durable-store entries dropped as corrupt or colliding.",
			cs.DiskCorrupt)
		g("cxlsimd_store_entries", "Durable-store resident entries.", cs.DiskEntries)
		g("cxlsimd_store_bytes", "Durable-store resident bytes.", cs.DiskBytes)
	}
	if coord != nil {
		dm := coord.Snapshot()
		g("cxlsimd_dist_workers_live", "Registered dist workers currently usable.", dm.WorkersLive)
		g("cxlsimd_dist_workers_dead", "Registered dist workers presumed dead or stale.", dm.WorkersDead)
		g("cxlsimd_dist_chunks_dispatched_total", "Job chunks sent to workers.", dm.ChunksDispatched)
		g("cxlsimd_dist_chunks_reassigned_total", "Job chunks requeued after a worker failure.",
			dm.ChunksReassigned)
		g("cxlsimd_dist_remote_jobs_total", "Jobs executed on remote workers.", dm.RemoteJobs)
		g("cxlsimd_dist_local_fallbacks_total", "Runs (or partial runs) executed locally for lack of workers.",
			dm.LocalFallbacks)
	}

	g("cxlsimd_run_wall_ewma_seconds", "EWMA of run wall time (Retry-After basis).",
		fmt.Sprintf("%.6f", m.runEWMA))
	g("cxlsimd_sim_events_total", "Simulated events across all served jobs.", m.simEvents)
	g("cxlsimd_sim_wall_seconds_total", "Cumulative job wall-clock seconds.",
		fmt.Sprintf("%.6f", m.simWall.Seconds()))
	rate := 0.0
	if m.simWall > 0 {
		rate = float64(m.simEvents) / m.simWall.Seconds()
	}
	g("cxlsimd_sim_events_per_second", "Aggregate simulated-event rate.",
		fmt.Sprintf("%.1f", rate))
	g("cxlsimd_jobs_total", "Runner jobs executed.", m.jobsRun)
	g("cxlsimd_jobs_failed_total", "Runner jobs that failed or were cancelled.", m.jobsErred)

	fmt.Fprintf(w, "# HELP cxlsimd_requests_total Finished HTTP requests by status code.\n")
	fmt.Fprintf(w, "# TYPE cxlsimd_requests_total counter\n")
	codes := make([]int, 0, len(m.requests))
	for code := range m.requests {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(w, "cxlsimd_requests_total{code=\"%d\"} %d\n", code, m.requests[code])
	}

	fmt.Fprintf(w, "# HELP cxlsimd_section_latency_seconds Run wall time per section.\n")
	fmt.Fprintf(w, "# TYPE cxlsimd_section_latency_seconds summary\n")
	names := make([]string, 0, len(m.sections))
	for name := range m.sections {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := m.sections[name]
		fmt.Fprintf(w, "cxlsimd_section_latency_seconds_sum{section=%q} %.6f\n", name, s.seconds)
		fmt.Fprintf(w, "cxlsimd_section_latency_seconds_count{section=%q} %d\n", name, s.count)
	}
}

// statusRecorder captures the response code for request accounting.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}
