package service

import (
	"context"
	"errors"
	"sync"
)

// Admission control: a fixed number of run slots plus a bounded waiting
// room. A request that finds every slot busy may wait — but only while
// fewer than maxWait requests are already waiting; beyond that it is
// rejected immediately so load shedding happens at the front door (429 +
// Retry-After) instead of as an unbounded pile of goroutines all holding
// a simulation's worth of memory.

var (
	// errQueueFull rejects a request when the waiting room is full.
	errQueueFull = errors.New("service: admission queue full")
	// errDraining rejects a request once shutdown has begun.
	errDraining = errors.New("service: server draining")
)

// queue is the admission controller.
type queue struct {
	slots chan struct{} // buffered; a token = the right to run one job

	mu      sync.Mutex
	waiting int

	maxWait int
	closed  chan struct{}
	once    sync.Once
}

// newQueue builds an admission controller with the given number of
// concurrent run slots and waiting-room capacity.
func newQueue(slots, maxWait int) *queue {
	q := &queue{
		slots:   make(chan struct{}, slots),
		maxWait: maxWait,
		closed:  make(chan struct{}),
	}
	for i := 0; i < slots; i++ {
		q.slots <- struct{}{}
	}
	return q
}

// acquire obtains a run slot, waiting in the bounded queue if necessary.
// It returns errQueueFull when the waiting room is already full,
// errDraining when the server is shutting down, or ctx.Err() when the
// caller gave up first. A nil return must be paired with release().
func (q *queue) acquire(ctx context.Context) error {
	select {
	case <-q.closed:
		return errDraining
	default:
	}
	// Fast path: a slot is free right now.
	select {
	case <-q.slots:
		return nil
	default:
	}
	q.mu.Lock()
	if q.waiting >= q.maxWait {
		q.mu.Unlock()
		return errQueueFull
	}
	q.waiting++
	q.mu.Unlock()
	defer func() {
		q.mu.Lock()
		q.waiting--
		q.mu.Unlock()
	}()
	select {
	case <-q.slots:
		return nil
	case <-q.closed:
		return errDraining
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot acquired by acquire.
func (q *queue) release() { q.slots <- struct{}{} }

// depth reports how many requests are waiting for a slot.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiting
}

// inFlight reports how many slots are currently held.
func (q *queue) inFlight() int { return cap(q.slots) - len(q.slots) }

// close rejects future acquires and wakes every waiter with errDraining.
// Held slots stay valid: in-flight work finishes and releases normally.
func (q *queue) close() { q.once.Do(func() { close(q.closed) }) }
