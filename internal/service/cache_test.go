package service

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the test deadline-fails.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func body(n int, fill byte) []byte { return bytes.Repeat([]byte{fill}, n) }

// TestCacheLRUEviction: the byte bound evicts least-recently-used entries
// and the counters track it.
func TestCacheLRUEviction(t *testing.T) {
	// Each entry costs len(key)+len(body) = 2+98 = 100 bytes; three fit.
	c := newResultCache(300)
	for i := 0; i < 3; i++ {
		c.put(cached{key: fmt.Sprintf("k%d", i), body: body(98, byte(i)), status: 200})
	}
	// Touch k0 so k1 is the LRU victim when k3 arrives.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.put(cached{key: "k3", body: body(98, 3), status: 200})

	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 survived eviction; LRU order wrong")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	s := c.snapshot()
	if s.Evictions != 1 || s.Entries != 3 || s.Bytes != 300 {
		t.Fatalf("snapshot = %+v, want 1 eviction, 3 entries, 300 bytes", s)
	}
	// get: 1 pre-eviction hit + 1 miss (k1) + 3 hits.
	if s.Hits != 4 || s.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 4/1", s.Hits, s.Misses)
	}
}

// TestCacheOversizedEntryNotStored: a body bigger than the whole cache is
// passed through without evicting everything else.
func TestCacheOversizedEntryNotStored(t *testing.T) {
	c := newResultCache(100)
	c.put(cached{key: "small", body: body(50, 1), status: 200})
	c.put(cached{key: "huge", body: body(500, 2), status: 200})
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry was stored")
	}
	if _, ok := c.get("small"); !ok {
		t.Fatal("oversized put evicted resident entries")
	}
}

// TestCacheSameKeyOverwriteKeepsBytes: determinism means a same-key put
// carries identical bytes; the cache keeps the original.
func TestCacheSameKeyOverwriteKeepsBytes(t *testing.T) {
	c := newResultCache(1000)
	c.put(cached{key: "k", body: []byte("deterministic"), status: 200})
	c.put(cached{key: "k", body: []byte("deterministic"), status: 200})
	s := c.snapshot()
	if s.Entries != 1 {
		t.Fatalf("entries = %d, want 1", s.Entries)
	}
	got, _ := c.get("k")
	if string(got.body) != "deterministic" {
		t.Fatalf("body = %q", got.body)
	}
}

// TestFlightGroupCoalesces: concurrent same-key callers share one
// execution; exactly one is the leader.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var calls int
	var mu sync.Mutex
	release := make(chan struct{})
	never := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	leaders := make(chan bool, n)
	run := func() {
		defer wg.Done()
		resp, err, leader := g.do("key", never, func() (cached, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			<-release
			return cached{body: []byte("shared")}, nil
		})
		leaders <- leader
		if err != nil || string(resp.body) != "shared" {
			t.Errorf("do: body=%q err=%v", resp.body, err)
		}
	}
	// Start the leader and wait until its call is registered, so every
	// follower is guaranteed to coalesce instead of leading its own call.
	wg.Add(1)
	go run()
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		_, ok := g.calls["key"]
		return ok
	})
	for i := 1; i < n; i++ {
		wg.Add(1)
		go run()
	}
	// Release the leader only once every follower has joined the call —
	// the call stays registered until then because fn blocks on release.
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		call, ok := g.calls["key"]
		return ok && call.waiters == n-1
	})
	close(release)
	wg.Wait()
	close(leaders)
	nLeaders := 0
	for l := range leaders {
		if l {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", nLeaders)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

// TestFlightLeaderPanicUnblocksFollowers is the regression test for the
// coalescing audit: a leader whose run function panicked used to leave
// the key's map entry in place with an unclosed done channel — every
// coalesced follower hung forever and the key was poisoned for all future
// requests. The deferred cleanup now wakes followers with
// errLeaderPanicked and the next request elects a fresh leader.
func TestFlightLeaderPanicUnblocksFollowers(t *testing.T) {
	g := newFlightGroup()
	const key = "panicky"

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("leader's panic did not propagate to its caller")
			}
		}()
		_, _, _ = g.do(key, nil, func() (cached, error) {
			<-release
			panic("simulated leader crash")
		})
	}()
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		_, ok := g.calls[key]
		return ok
	})

	const followers = 3
	errs := make(chan error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err, leader := g.do(key, nil, func() (cached, error) {
				t.Error("second leader elected while the first was in flight")
				return cached{}, nil
			})
			if leader {
				err = nil // fn flags the real failure mode above
			}
			errs <- err
		}()
	}
	waitFor(t, func() bool { return g.waiters() == followers })
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, errLeaderPanicked) {
			t.Fatalf("follower got %v, want errLeaderPanicked", err)
		}
	}

	// The key must not be poisoned: a fresh request leads and completes.
	resp, err, leader := g.do(key, nil, func() (cached, error) {
		return cached{body: []byte("recovered")}, nil
	})
	if err != nil || !leader || string(resp.body) != "recovered" {
		t.Fatalf("key poisoned after leader panic: resp=%q err=%v leader=%v", resp.body, err, leader)
	}
	if n := g.waiters(); n != 0 {
		t.Fatalf("waiters gauge = %d after all calls finished, want 0", n)
	}
}

// TestFlightAbandonedFollowerReleasesWaiterSlot is the second half of the
// audit: a follower whose request context ends while coalesced must give
// its waiter slot back — the counter was previously incremented but never
// decremented, so the gauge would only ever grow.
func TestFlightAbandonedFollowerReleasesWaiterSlot(t *testing.T) {
	g := newFlightGroup()
	const key = "slow"

	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = g.do(key, nil, func() (cached, error) {
			<-release
			return cached{body: []byte("done")}, nil
		})
	}()
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		_, ok := g.calls[key]
		return ok
	})

	gone := make(chan struct{})
	abandoned := make(chan error, 1)
	go func() {
		_, err, _ := g.do(key, gone, func() (cached, error) {
			return cached{}, fmt.Errorf("must not run")
		})
		abandoned <- err
	}()
	staying := make(chan error, 1)
	go func() {
		_, err, _ := g.do(key, nil, func() (cached, error) {
			return cached{}, fmt.Errorf("must not run")
		})
		staying <- err
	}()

	waitFor(t, func() bool { return g.waiters() == 2 })
	close(gone)
	if err := <-abandoned; !errors.Is(err, errFollowerGone) {
		t.Fatalf("abandoned follower got %v, want errFollowerGone", err)
	}
	// The leak this test pins down: the gauge used to stay at 2 here.
	waitFor(t, func() bool { return g.waiters() == 1 })

	close(release)
	if err := <-staying; err != nil {
		t.Fatalf("patient follower got %v", err)
	}
	<-leaderDone
	waitFor(t, func() bool { return g.waiters() == 0 })
}
