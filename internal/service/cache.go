package service

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/xxhash"
)

// Deterministic result cache. The runner guarantees that a (config, seed)
// pair renders byte-identical output on every run, so a rendered response
// body is a pure function of its canonical request key and can be served
// from memory forever; the only eviction pressure is capacity. The cache
// is a size-bounded (total body+key bytes) LRU with hit/miss/eviction
// counters for /metrics.

// cached is one stored response.
type cached struct {
	key         string
	body        []byte // immutable once stored; callers must not modify
	contentType string
	status      int
}

func (c cached) cost() int64 { return int64(len(c.key) + len(c.body)) }

// cacheStats is a point-in-time counter snapshot across both cache
// tiers: the in-memory LRU (Hits/Misses/...) and, when a durable store is
// configured, the on-disk tier (Disk*). A memory miss consults the disk
// tier before running anything, so Misses counts lookups that left memory
// and DiskHits the subset rescued from disk.
type cacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`

	DiskHits      uint64 `json:"disk_hits"`
	DiskMisses    uint64 `json:"disk_misses"`
	DiskPuts      uint64 `json:"disk_puts"`
	DiskEvictions uint64 `json:"disk_evictions"`
	DiskCorrupt   uint64 `json:"disk_corrupt"`
	DiskEntries   int    `json:"disk_entries"`
	DiskBytes     int64  `json:"disk_bytes"`
}

// hitRate is served-from-cache (either tier) over lookups, or 0 before
// the first lookup. Without a disk tier this reduces to hits/(hits+misses).
func (s cacheStats) hitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits+s.DiskHits) / float64(s.Hits+s.Misses)
}

// resultCache is the LRU store.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used; values are cached
	items    map[string]*list.Element
	stats    cacheStats
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the stored response for key, bumping its recency.
func (c *resultCache) get(key string) (cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return cached{}, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(cached), true
}

// put stores a response, evicting least-recently-used entries until the
// byte bound holds. A response larger than the whole cache is not stored.
func (c *resultCache) put(v cached) {
	if v.cost() > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[v.key]; ok {
		// Determinism makes a same-key overwrite a no-op byte-wise;
		// refresh recency and keep the stored copy.
		c.ll.MoveToFront(el)
		return
	}
	c.items[v.key] = c.ll.PushFront(v)
	c.bytes += v.cost()
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		old := el.Value.(cached)
		c.ll.Remove(el)
		delete(c.items, old.key)
		c.bytes -= old.cost()
		c.stats.Evictions++
	}
}

// snapshot returns the counters with current occupancy filled in.
func (c *resultCache) snapshot() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.bytes
	return s
}

// keyHash renders a short stable digest of a canonical key for response
// headers and logs (the full key can be long).
func keyHash(key string) string {
	return fmt.Sprintf("%016x", xxhash.Sum64([]byte(key), 0))
}

// flightGroup coalesces concurrent identical requests: determinism means
// every caller with the same canonical key wants the same bytes, so only
// the first (the leader) runs the simulation; followers wait for the
// leader's response without consuming admission slots.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	waiters int // followers coalesced onto this call (under flightGroup.mu)
	resp    cached
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per key among concurrent callers. The bool reports
// whether this caller was the leader. A waiting follower whose ctx ends
// first returns its ctx error without cancelling the leader (and gives up
// its waiter slot, so the gauge never counts ghosts).
//
// The leader's cleanup is deferred: if fn panics, the map entry is still
// removed and the done channel still closed, so followers wake with
// errLeaderPanicked instead of hanging forever on a poisoned key, and the
// next request for the key elects a fresh leader. The panic itself keeps
// propagating to the caller.
func (g *flightGroup) do(key string, wait <-chan struct{}, fn func() (cached, error)) (cached, error, bool) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		call.waiters++
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.resp, call.err, false
		case <-wait:
			g.mu.Lock()
			call.waiters--
			g.mu.Unlock()
			return cached{}, errFollowerGone, false
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			call.resp, call.err = cached{}, errLeaderPanicked
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(call.done)
	}()
	call.resp, call.err = fn()
	completed = true
	return call.resp, call.err, true
}

// waiters reports how many followers are currently coalesced behind
// in-flight leaders — the /metrics gauge that would have exposed a waiter
// leak.
func (g *flightGroup) waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, call := range g.calls {
		n += call.waiters
	}
	return n
}

// errFollowerGone marks a coalesced follower that stopped waiting.
var errFollowerGone = fmt.Errorf("service: request abandoned while coalesced")

// errLeaderPanicked is what followers receive when their leader's run
// panicked out of flightGroup.do.
var errLeaderPanicked = fmt.Errorf("service: coalesced leader panicked")
