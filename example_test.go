package cxl2sim_test

import (
	"fmt"

	cxl2sim "repro"
)

// Example demonstrates the three access classes of the paper on a fresh
// system: a coherent device read of host memory (D2H), an accelerator
// access to device memory (D2D), and a host load of device memory (H2D).
func Example() {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 1 << 20, LLCWays: 16, Cores: 2})

	line := make([]byte, cxl2sim.LineSize)
	line[0] = 0x42
	sys.WriteHostMemory(0x1000, line)

	d2h := sys.D2H(cxl2sim.CSRead, 0x1000, nil, 0)
	fmt.Printf("D2H CS-rd data=%#x\n", d2h.Data[0])

	dev := cxl2sim.DeviceMemoryBase + 0x2000
	sys.D2D(cxl2sim.COWrite, dev, line, 0)
	d2d := sys.D2D(cxl2sim.CSRead, dev, nil, 0)
	fmt.Printf("D2D round trip ok=%v dmcHit=%v\n", d2d.Data[0] == 0x42, d2d.DMCHit)

	h2d := sys.H2D(0, cxl2sim.Ld, dev, nil, 0)
	fmt.Printf("H2D ld ok=%v\n", h2d.Data[0] == 0x42)
	// Output:
	// D2H CS-rd data=0x42
	// D2D round trip ok=true dmcHit=true
	// H2D ld ok=true
}

// ExampleSystem_EnterDeviceBias shows the §IV-B bias-mode switch: the
// region flips to device bias (after the host flush) and automatically
// returns to host bias on the first H2D access.
func ExampleSystem_EnterDeviceBias() {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 1 << 20, LLCWays: 16, Cores: 2})
	base := cxl2sim.DeviceMemoryBase

	sys.EnterDeviceBias(base, 1<<20, 0)
	fmt.Println("after switch:", sys.BiasOf(base))

	sys.H2D(0, cxl2sim.Ld, base, nil, 0)
	fmt.Println("after host ld:", sys.BiasOf(base))
	// Output:
	// after switch: device-bias
	// after host ld: host-bias
}

// ExampleSystem_MeasureD2H runs the paper's §V microbenchmark methodology
// through the public API: CS-read latency against an LLC-resident line.
func ExampleSystem_MeasureD2H() {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 1 << 20, LLCWays: 16, Cores: 2})
	m, err := sys.MeasureD2H(cxl2sim.CSRead, cxl2sim.MeasureSpec{Reps: 100, Place: cxl2sim.PlaceLLC})
	if err != nil {
		panic(err)
	}
	fmt.Printf("CS-rd LLC-1: %.1f ns median over %d reps\n", m.MedianNs, m.Reps)
	// Output:
	// CS-rd LLC-1: 212.5 ns median over 100 reps
}

// ExampleSystem_EnableTracing captures a transaction trace and summarizes
// it per operation.
func ExampleSystem_EnableTracing() {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 1 << 20, LLCWays: 16, Cores: 2})
	buf := sys.EnableTracing(64)

	sys.D2H(cxl2sim.CSRead, 0x1000, nil, 0)
	sys.D2H(cxl2sim.CSRead, 0x1000, nil, 0) // HMC hit
	fmt.Println("events:", buf.Total())
	// Output:
	// events: 2
}
